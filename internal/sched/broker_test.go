package sched

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vmq/internal/filters"
	"vmq/internal/video"
)

// countingCoalescable wraps a coalescable backend and counts true batch
// evaluations (= GEMM dispatches for trained backends).
type countingCoalescable struct {
	filters.Coalescable
	calls  atomic.Int64
	frames atomic.Int64
}

func (c *countingCoalescable) EvaluateBatch(frames []*video.Frame, dst []*filters.Output) []*filters.Output {
	c.calls.Add(1)
	c.frames.Add(int64(len(frames)))
	return c.Coalescable.EvaluateBatch(frames, dst)
}

func (c *countingCoalescable) Evaluate(f *video.Frame) *filters.Output {
	var out [1]*filters.Output
	c.EvaluateBatch([]*video.Frame{f}, out[:0])
	return out[0]
}

func newTrained(t testing.TB, seed uint64) *filters.Trained {
	t.Helper()
	p := video.Jackson()
	return filters.NewUntrained(filters.OD, p, filters.TrainedConfig{Img: 16, Channels: 8, Seed: seed}, nil)
}

// Concurrent submissions from many "feeds" sharing one architecture must
// merge into few large evaluations, and every submitter must get outputs
// bit-identical to a standalone evaluation of its own frames.
func TestBrokerCoalescesAcrossSubmitters(t *testing.T) {
	p := video.Jackson()
	const feeds, perFeed = 8, 16
	counting := &countingCoalescable{Coalescable: newTrained(t, 7)}
	br := New(Config{Batch: feeds * 2, Flush: 50 * time.Millisecond})

	backends := make([]filters.Backend, feeds)
	clips := make([][]*video.Frame, feeds)
	for i := range backends {
		if i == 0 {
			backends[i] = br.Wrap(counting) // first member becomes the evaluator
		} else {
			backends[i] = br.Wrap(newTrained(t, 7))
		}
		clips[i] = video.NewStream(p, uint64(100+i)).Take(perFeed)
	}

	// Reference: each feed evaluated standalone through its own backend.
	want := make([][]*filters.Output, feeds)
	for i := range clips {
		want[i] = filters.EvaluateBatch(newTrained(t, 7), clips[i])
	}

	var wg sync.WaitGroup
	got := make([][]*filters.Output, feeds)
	for i := range backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var outs []*filters.Output
			for off := 0; off < perFeed; off += 2 { // sparse: 2 frames per submission
				outs = filters.EvaluateBatchInto(backends[i], clips[i][off:off+2], outs)
			}
			got[i] = outs
		}(i)
	}
	wg.Wait()

	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("feed %d: %d outputs, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			requireSameOutput(t, i, j, got[i][j], want[i][j])
		}
	}

	totalFrames := int64(feeds * perFeed)
	if counting.frames.Load() != totalFrames {
		t.Fatalf("evaluator saw %d frames, want %d", counting.frames.Load(), totalFrames)
	}
	// Per-feed dispatch would be feeds*perFeed/2 = 64 calls; coalescing
	// must do far better. The exact count depends on scheduling (lazy
	// membership means the first submissions flush small while the group
	// ramps up), so assert a conservative bound and that cross-submitter
	// merging happened.
	if calls := counting.calls.Load(); calls > totalFrames/3 {
		t.Fatalf("%d evaluations for %d frames — coalescing not happening", calls, totalFrames)
	}
	ms := br.Metrics()
	if len(ms) != 1 {
		t.Fatalf("one architecture, got %d groups: %+v", len(ms), ms)
	}
	g := ms[0]
	if g.Members != feeds || g.Frames != totalFrames || g.Merged == 0 || g.MaxBatch < 4 {
		t.Fatalf("group metrics %+v: want %d members, %d frames, merged > 0", g, feeds, totalFrames)
	}
}

func requireSameOutput(t *testing.T, feed, j int, got, want *filters.Output) {
	t.Helper()
	if math.Float64bits(got.Total) != math.Float64bits(want.Total) {
		t.Fatalf("feed %d frame %d: total %v vs %v", feed, j, got.Total, want.Total)
	}
	for c := range got.Counts {
		if math.Float64bits(got.Counts[c]) != math.Float64bits(want.Counts[c]) {
			t.Fatalf("feed %d frame %d class %d: count %v vs %v", feed, j, c, got.Counts[c], want.Counts[c])
		}
		gm, wm := got.Maps[c], want.Maps[c]
		if (gm == nil) != (wm == nil) {
			t.Fatalf("feed %d frame %d class %d: map presence differs", feed, j, c)
		}
		if gm != nil {
			for k := range gm.Cells {
				if gm.Cells[k] != wm.Cells[k] {
					t.Fatalf("feed %d frame %d class %d cell %d differs", feed, j, c, k)
				}
			}
		}
	}
}

// A sparse submitter in a multi-member group must not wait for batch-mates
// that never come: the deadline flushes it — after genuinely waiting out
// the flush window, since another live member could still submit.
func TestBrokerDeadlineFlush(t *testing.T) {
	br := New(Config{Batch: 64, Flush: 50 * time.Millisecond})
	a := br.Wrap(newTrained(t, 3))
	b := br.Wrap(newTrained(t, 3))
	frames := video.NewStream(video.Jackson(), 9).Take(3)
	// Warm-up round: both proxies submit concurrently, taking their live
	// memberships (membership is lazy) and flushing via everyone-pending.
	var wg sync.WaitGroup
	for i, be := range []filters.Backend{a, b} {
		wg.Add(1)
		go func(i int, be filters.Backend) {
			defer wg.Done()
			be.Evaluate(frames[i])
		}(i, be)
	}
	wg.Wait()
	// Lone sparse submission with b idle: must wait out the window (b is
	// live and could submit), then deadline-flush rather than hang.
	start := time.Now()
	out := a.Evaluate(frames[2])
	waited := time.Since(start)
	if out == nil {
		t.Fatal("no output")
	}
	if waited < 25*time.Millisecond {
		t.Fatalf("lone submission returned after %v — it cannot have waited for the %v flush window", waited, br.cfg.Flush)
	}
	if waited > 5*time.Second {
		t.Fatalf("lone submission took %v — deadline flush broken", waited)
	}
	ms := br.Metrics()
	if len(ms) != 1 || ms[0].Frames != 3 || ms[0].Live != 2 {
		t.Fatalf("metrics after deadline flush: %+v", ms)
	}
}

// A single-member group must evaluate synchronously — no deadline stall
// for batch-mates that cannot exist — so wrapping a lone feed's backend
// never throttles it.
func TestBrokerSingleMemberNoStall(t *testing.T) {
	br := New(Config{Batch: 64, Flush: time.Hour}) // a deadline wait would hang the test
	b := br.Wrap(newTrained(t, 3))
	frames := video.NewStream(video.Jackson(), 9).Take(24)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var outs []*filters.Output
		for i := 0; i < len(frames); i += 2 {
			outs = filters.EvaluateBatchInto(b, frames[i:i+2], outs[:0])
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("single-member submissions stalled on the coalesce deadline")
	}
	ms := br.Metrics()
	if len(ms) != 1 || ms[0].Frames != 24 || ms[0].Merged != 0 {
		t.Fatalf("metrics after single-member run: %+v", ms)
	}
}

// The size trigger must flush without waiting for the deadline.
func TestBrokerSizeTrigger(t *testing.T) {
	br := New(Config{Batch: 4, Flush: time.Hour}) // deadline effectively disabled
	b := br.Wrap(newTrained(t, 3))
	frames := video.NewStream(video.Jackson(), 9).Take(4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		filters.EvaluateBatch(b, frames)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("size-triggered flush never happened")
	}
}

// Different architectures must form different groups — their frames never
// share a GEMM.
func TestBrokerGroupsByArchitecture(t *testing.T) {
	br := New(Config{Batch: 2, Flush: time.Millisecond})
	a := br.Wrap(newTrained(t, 1))
	b := br.Wrap(newTrained(t, 2))
	if len(br.Metrics()) != 2 {
		t.Fatalf("two architectures should form two groups: %+v", br.Metrics())
	}
	// Non-coalescable backends pass through unchanged.
	cal := filters.NewODFilter(video.Jackson(), 1, nil)
	if br.Wrap(cal) != filters.Backend(cal) {
		t.Fatal("calibrated backend should not be wrapped")
	}
	// Re-wrapping a proxy joins the same group instead of nesting.
	if rewrapped, ok := br.Wrap(a).(*proxy); !ok || rewrapped.group != a.(*proxy).group {
		t.Fatal("re-wrapping must join the existing group")
	}
	_ = b
}

// Hammer the broker from many goroutines under -race: correctness of the
// scatter (each caller gets outputs for exactly its frames, in order).
func TestBrokerScatterOrderUnderLoad(t *testing.T) {
	p := video.Jackson()
	inner := newTrained(t, 5)
	br := New(Config{Batch: 8, Flush: 200 * time.Microsecond})
	const workers = 6
	backends := make([]filters.Backend, workers)
	for i := range backends {
		backends[i] = br.Wrap(newTrained(t, 5))
	}
	clip := video.NewStream(p, 77).Take(60)
	want := filters.EvaluateBatch(inner, clip)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(clip); i += workers {
				out := backends[w].Evaluate(clip[i])
				requireSameOutput(t, w, i, out, want[i])
			}
		}(w)
	}
	wg.Wait()
}

// When a member leaves (its feed's source ended), remaining submitters
// must stop deadline-waiting for it: a 2-member group degrades to the
// synchronous single-member path after one Leave.
func TestBrokerMemberLeave(t *testing.T) {
	br := New(Config{Batch: 64, Flush: time.Hour}) // any deadline wait would hang
	a := br.Wrap(newTrained(t, 3))
	b := br.Wrap(newTrained(t, 3))
	b.(Member).Leave()
	b.(Member).Leave() // idempotent
	frames := video.NewStream(video.Jackson(), 9).Take(8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, f := range frames {
			a.Evaluate(f)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("submissions stalled waiting for a departed member")
	}
	ms := br.Metrics()
	if len(ms) != 1 || ms[0].Members != 2 || ms[0].Live != 1 {
		t.Fatalf("metrics after leave: %+v", ms)
	}
}

// Rotated-out architectures must not pin their evaluator: when a group's
// last proxy departs, the group is removed (weights and scratch become
// collectable) while its counters stay visible, merged per key, in the
// metrics snapshot.
func TestBrokerRetiresAbandonedGroups(t *testing.T) {
	br := New(Config{Batch: 4, Flush: time.Millisecond})
	for round := 0; round < 3; round++ {
		b := br.Wrap(newTrained(t, 11)) // same key every round
		b.Evaluate(video.NewStream(video.Jackson(), 9).Next())
		b.(Member).Leave()
	}
	idle := br.Wrap(newTrained(t, 12)) // different key, never submits
	idle.(Member).Leave()

	active := 0
	for _, sh := range br.shards {
		sh.mu.Lock()
		active += len(sh.groups)
		sh.mu.Unlock()
	}
	if active != 0 {
		t.Fatalf("%d groups still held after every proxy left", active)
	}
	ms := br.Metrics()
	if len(ms) != 2 {
		t.Fatalf("want 2 retired keys in metrics, got %+v", ms)
	}
	for _, g := range ms {
		if g.Live != 0 {
			t.Fatalf("retired group reports live members: %+v", g)
		}
	}
	var submitted GroupMetrics
	for _, g := range ms {
		if g.Frames > 0 {
			submitted = g
		}
	}
	if submitted.Members != 3 || submitted.Frames != 3 || submitted.Batches != 3 {
		t.Fatalf("rotated key should accumulate 3 members/frames/batches: %+v", submitted)
	}
}

// armedPanicBackend panics on every evaluation while armed — the
// crashing-model stand-in for the isolation test. Unarmed it delegates,
// so warm-up submissions establish group membership normally.
type armedPanicBackend struct {
	filters.Coalescable
	armed atomic.Bool
}

func (b *armedPanicBackend) EvaluateBatch(frames []*video.Frame, dst []*filters.Output) []*filters.Output {
	if b.armed.Load() {
		panic("injected batch fault")
	}
	return b.Coalescable.EvaluateBatch(frames, dst)
}

func (b *armedPanicBackend) Evaluate(f *video.Frame) *filters.Output {
	var out [1]*filters.Output
	return b.EvaluateBatch([]*video.Frame{f}, out[:0])[0]
}

// A member whose evaluation panics mid-batch must not take down its
// coalesce group: the healthy group-mate still gets outputs bit-identical
// to a standalone evaluation, only the faulting submitter observes the
// panic, and the group keeps serving afterwards.
func TestBrokerIsolatesPanickingMember(t *testing.T) {
	p := video.Jackson()
	bad := &armedPanicBackend{Coalescable: newTrained(t, 7)}
	br := New(Config{Batch: 1 << 20, Flush: 30 * time.Millisecond})
	// Wrapped first: the faulting backend becomes the group evaluator, so
	// the merged batch itself panics and the broker must fall back to
	// per-submitter isolation.
	badProxy := br.Wrap(bad)
	goodProxy := br.Wrap(newTrained(t, 7))

	clipBad := video.NewStream(p, 11).Take(4)
	clipGood := video.NewStream(p, 12).Take(4)
	want := filters.EvaluateBatch(newTrained(t, 7), clipGood)

	// Warm-up, unarmed: both proxies take membership so the armed round
	// coalesces instead of running the lone-member fast path.
	filters.EvaluateBatchInto(badProxy, clipBad[:1], nil)
	filters.EvaluateBatchInto(goodProxy, clipGood[:1], nil)

	bad.armed.Store(true)
	var (
		wg          sync.WaitGroup
		badPanicked atomic.Bool
		got         []*filters.Output
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() != nil {
				badPanicked.Store(true)
			}
		}()
		filters.EvaluateBatchInto(badProxy, clipBad, nil)
	}()
	go func() {
		defer wg.Done()
		got = filters.EvaluateBatchInto(goodProxy, clipGood, nil)
	}()
	wg.Wait()

	if !badPanicked.Load() {
		t.Fatal("faulting member's submitter never observed its panic")
	}
	if len(got) != len(clipGood) {
		t.Fatalf("healthy member got %d outputs, want %d", len(got), len(clipGood))
	}
	for j := range got {
		requireSameOutput(t, 1, j, got[j], want[j])
	}

	// The group survives the fault: the healthy member keeps evaluating
	// (through the disarmed group evaluator) with identical results.
	bad.armed.Store(false)
	again := filters.EvaluateBatchInto(goodProxy, clipGood, nil)
	if len(again) != len(want) {
		t.Fatalf("post-fault evaluation got %d outputs, want %d", len(again), len(want))
	}
	for j := range again {
		requireSameOutput(t, 1, j, again[j], want[j])
	}
}

// parallelRecorder is a Coalescable evaluator that records every worker
// budget the broker hands it before an evaluation.
type parallelRecorder struct {
	*filters.Trained
	mu  sync.Mutex
	set []int
}

func (p *parallelRecorder) SetEvalWorkers(n int) {
	p.mu.Lock()
	p.set = append(p.set, n)
	p.mu.Unlock()
	p.Trained.SetEvalWorkers(n)
}

// A configured Workers budget must be applied only to flushes whose
// estimated GEMM work clears ParallelFlops; smaller flushes pin the
// evaluator to one core. With no Workers configured the broker must not
// touch the evaluator's worker setting at all.
func TestBrokerRoutesFlushesThroughWorkerBudget(t *testing.T) {
	rec := &parallelRecorder{Trained: newTrained(t, 21)}
	perFrame := rec.ForwardFlops()
	if perFrame <= 0 {
		t.Fatalf("ForwardFlops = %d", perFrame)
	}
	var asked atomic.Int64
	br := New(Config{
		Batch: 64, Flush: time.Hour, Shards: 3,
		ParallelFlops: 4 * perFrame, // 4+ frames fan out, fewer stay serial
		Workers: func(distinct int) int {
			asked.Add(1)
			if distinct < 1 {
				t.Errorf("Workers called with distinct=%d", distinct)
			}
			return 3
		},
	})
	bk := br.Wrap(rec)
	frames := video.NewStream(video.Jackson(), 5).Take(8)
	// Single member: the sync fast path evaluates immediately, making the
	// flush boundaries deterministic.
	filters.EvaluateBatch(bk, frames)     // 8 frames ≥ threshold → budget
	filters.EvaluateBatch(bk, frames[:2]) // 2 frames < threshold → 1 worker
	rec.mu.Lock()
	got := append([]int(nil), rec.set...)
	rec.mu.Unlock()
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("worker budgets applied = %v, want [3 1]", got)
	}
	if asked.Load() != 1 {
		t.Fatalf("Workers consulted %d times, want 1", asked.Load())
	}

	// No Workers configured: the evaluator's setting must stay untouched.
	rec2 := &parallelRecorder{Trained: newTrained(t, 22)}
	br2 := New(Config{Batch: 64, Flush: time.Hour})
	filters.EvaluateBatch(br2.Wrap(rec2), frames)
	rec2.mu.Lock()
	defer rec2.mu.Unlock()
	if len(rec2.set) != 0 {
		t.Fatalf("broker without Workers touched the evaluator: %v", rec2.set)
	}
}

// Feeds joining and draining across shards while deadline flushes run:
// the sharded broker's bookkeeping (join, flush, leave, retire, metrics
// folds) must stay race-free and account for every frame exactly once.
// Run under -race this is the churn proof for the shard split.
func TestBrokerShardChurn(t *testing.T) {
	p := video.Jackson()
	const arches, workers, rounds, perFeed = 5, 8, 6, 24
	br := New(Config{Batch: 6, Flush: 200 * time.Microsecond, Shards: 4})

	stop := make(chan struct{})
	var snapshots sync.WaitGroup
	snapshots.Add(1)
	go func() {
		defer snapshots.Done()
		for {
			select {
			case <-stop:
				return
			default:
				br.Metrics()
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			frames := video.NewStream(p, uint64(500+w)).Take(perFeed)
			for round := 0; round < rounds; round++ {
				arch := (w + round) % arches // keys spread across shards
				bk := br.Wrap(newTrained(t, uint64(30+arch)))
				var outs []*filters.Output
				for off := 0; off+2 <= len(frames); off += 2 {
					outs = filters.EvaluateBatchInto(bk, frames[off:off+2], outs)
				}
				if len(outs) != perFeed {
					t.Errorf("worker %d round %d: %d outputs, want %d", w, round, len(outs), perFeed)
				}
				bk.(Member).Leave()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapshots.Wait()

	var frames int64
	for _, gm := range br.Metrics() {
		frames += gm.Frames
	}
	if want := int64(workers * rounds * perFeed); frames != want {
		t.Fatalf("metrics account %d frames, want %d", frames, want)
	}
}
