package filters

import (
	"strings"
	"testing"

	"vmq/internal/simclock"
	"vmq/internal/video"
)

// Two instances trained identically (same architecture, seed, geometry,
// clock) must fingerprint together — that is what lets a server evaluate
// one feed's frames through another feed's backend. Any divergence in
// weights, rasterisation or cost accounting must split the key.
func TestCoalesceKeyIdentity(t *testing.T) {
	p := video.Jackson()
	cfg := TrainedConfig{Img: 16, Channels: 8, Seed: 7}
	a := NewUntrained(OD, p, cfg, nil)
	b := NewUntrained(OD, p, cfg, nil)
	if a.CoalesceKey() == "" || a.CoalesceKey() != b.CoalesceKey() {
		t.Fatalf("identical architectures must share a key: %q vs %q", a.CoalesceKey(), b.CoalesceKey())
	}
	if !strings.HasPrefix(a.CoalesceKey(), "OD-cnn-") {
		t.Fatalf("key %q should name the family", a.CoalesceKey())
	}

	diff := map[string]Backend{
		"seed":  NewUntrained(OD, p, TrainedConfig{Img: 16, Channels: 8, Seed: 8}, nil),
		"img":   NewUntrained(OD, p, TrainedConfig{Img: 32, Channels: 8, Seed: 7}, nil),
		"tech":  NewUntrained(IC, p, cfg, nil),
		"clock": NewUntrained(OD, p, cfg, simclock.New()),
	}
	for what, other := range diff {
		if CoalesceKeyOf(other) == a.CoalesceKey() {
			t.Fatalf("backend differing in %s must not share the key", what)
		}
	}

	// The count-only branch fingerprints separately from the full branch
	// network even at matching geometry and seed.
	cof := TrainCOF(p, TrainedConfig{Img: 16, Channels: 8, Seed: 7, Frames: 4, Epochs: 1}, nil)
	if cof.CoalesceKey() == "" || cof.CoalesceKey() == a.CoalesceKey() {
		t.Fatalf("COF key %q must exist and differ from the branch net's", cof.CoalesceKey())
	}

	// Backends without a declared identity must never coalesce.
	if CoalesceKeyOf(NewODFilter(p, 7, nil)) != "" {
		t.Fatal("calibrated backends declare no coalescing identity")
	}
}

// A shared memo serving an endless feed must hold a bounded number of
// entries: frames past the eviction watermark are released, so the memo's
// steady-state footprint is the capacity, not the feed length.
func TestSharedBoundedUnderLongFeed(t *testing.T) {
	p := video.Jackson()
	const capacity, total = 64, 4096
	s := NewShared(NewODFilter(p, 5, nil), capacity)
	src := video.NewStream(p, 5)
	var batch []*video.Frame
	var outs []*Output
	for i := 0; i < total; i++ {
		f := src.Next()
		if i%3 == 0 { // exercise both the per-frame and the batch fill paths
			s.Evaluate(f)
		} else {
			batch = append(batch[:0], f)
			outs = s.EvaluateBatch(batch, outs[:0])
		}
		if got := s.Entries(); got > capacity {
			t.Fatalf("after %d frames the memo holds %d entries, cap %d", i+1, got, capacity)
		}
	}
	if got := s.Entries(); got != capacity {
		t.Fatalf("steady state holds %d entries, want the full capacity %d", got, capacity)
	}
	_, misses := s.Stats()
	if misses != total {
		t.Fatalf("distinct frames must all evaluate: %d misses for %d frames", misses, total)
	}
}
