package filters

import (
	"reflect"
	"sync"
	"testing"

	"vmq/internal/simclock"
	"vmq/internal/video"
)

// countingBackend counts inner evaluations, concurrency-safely.
type countingBackend struct {
	Backend
	mu    sync.Mutex
	calls int
}

func (c *countingBackend) Evaluate(f *video.Frame) *Output {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.Backend.Evaluate(f)
}

func (c *countingBackend) ConcurrentSafe() bool { return ConcurrentSafe(c.Backend) }

func (c *countingBackend) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// Shared serves identical outputs to every caller while evaluating the
// inner backend exactly once per frame, and forwards the backend metadata.
func TestSharedMemoisesPerFrame(t *testing.T) {
	p := video.Jackson()
	inner := &countingBackend{Backend: NewODFilter(p, 3, nil)}
	shared := NewShared(inner, 0)
	if shared.Technique() != OD || shared.Grid() != 56 {
		t.Fatalf("metadata not forwarded: %v g=%d", shared.Technique(), shared.Grid())
	}
	if !ConcurrentSafe(shared) {
		t.Fatal("Shared must declare concurrency safety")
	}
	frames := video.NewStream(p, 3).Take(64)
	reference := NewODFilter(p, 3, nil)
	const queries = 6
	var wg sync.WaitGroup
	outs := make([][]*Output, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for _, f := range frames {
				outs[q] = append(outs[q], shared.Evaluate(f))
			}
		}(q)
	}
	wg.Wait()
	if got := inner.Calls(); got != len(frames) {
		t.Fatalf("inner evaluated %d times for %d frames x %d queries", got, len(frames), queries)
	}
	hits, misses := shared.Stats()
	if misses != int64(len(frames)) || hits != int64((queries-1)*len(frames)) {
		t.Fatalf("stats = %d hits / %d misses, want %d / %d",
			hits, misses, (queries-1)*len(frames), len(frames))
	}
	for q := 0; q < queries; q++ {
		for i, f := range frames {
			if !reflect.DeepEqual(outs[q][i], reference.Evaluate(f)) {
				t.Fatalf("query %d frame %d: shared output diverges from a standalone backend", q, i)
			}
		}
	}
}

// The clock is charged once per frame, not once per query — the virtual
// saving the shared scan exists for.
func TestSharedChargesClockOncePerFrame(t *testing.T) {
	p := video.Jackson()
	clk := simclock.New()
	shared := NewShared(NewODFilter(p, 4, clk), 0)
	frames := video.NewStream(p, 4).Take(50)
	for q := 0; q < 4; q++ {
		for _, f := range frames {
			shared.Evaluate(f)
		}
	}
	if got := clk.Calls("od-filter"); got != int64(len(frames)) {
		t.Fatalf("clock charged %d times, want %d", got, len(frames))
	}
}

// Eviction keeps the cache bounded and never breaks correctness: a caller
// trailing past the capacity re-evaluates and still gets the per-frame
// deterministic output.
func TestSharedEviction(t *testing.T) {
	p := video.Jackson()
	inner := &countingBackend{Backend: NewODFilter(p, 5, nil)}
	shared := NewShared(inner, 16)
	frames := video.NewStream(p, 5).Take(64)
	for _, f := range frames {
		shared.Evaluate(f)
	}
	// Only the last 16 frames remain cached, and a full second pass
	// thrashes even those (its own insertions evict the cached tail before
	// the scan reaches it) — re-evaluating everything, with outputs still
	// per-frame deterministic. In production the queries advance together,
	// so their spread stays far below the capacity and this worst case
	// never occurs.
	reference := NewODFilter(p, 5, nil)
	for _, f := range frames {
		if !reflect.DeepEqual(shared.Evaluate(f), reference.Evaluate(f)) {
			t.Fatalf("frame %d: post-eviction output diverges", f.Index)
		}
	}
	if got := inner.Calls(); got != 2*64 {
		t.Fatalf("inner evaluated %d times, want %d", got, 2*64)
	}
}

// A backend that is not concurrency-safe can still be shared: Shared
// serialises the inner calls.
type unsafeBackend struct {
	Backend
	mu   sync.Mutex
	busy bool
}

func (u *unsafeBackend) Evaluate(f *video.Frame) *Output {
	u.mu.Lock()
	if u.busy {
		u.mu.Unlock()
		panic("concurrent call into a single-threaded backend")
	}
	u.busy = true
	u.mu.Unlock()
	out := u.Backend.Evaluate(f)
	u.mu.Lock()
	u.busy = false
	u.mu.Unlock()
	return out
}

func TestSharedSerialisesUnsafeInner(t *testing.T) {
	p := video.Jackson()
	inner := &unsafeBackend{Backend: NewODFilter(p, 6, nil)}
	if ConcurrentSafe(inner) {
		t.Fatal("test wrapper must read as single-threaded")
	}
	shared := NewShared(inner, 0)
	frames := video.NewStream(p, 6).Take(128)
	var wg sync.WaitGroup
	for q := 0; q < 8; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			// Stagger starting points so goroutines race onto fresh frames.
			for i := range frames {
				shared.Evaluate(frames[(i+q*16)%len(frames)])
			}
		}(q)
	}
	wg.Wait()
}
