// Package filters implements the paper's primary contribution: the
// approximate IC (image-classification inspired) and OD (object-detection
// inspired) filters that estimate, per frame, the total object count (CF),
// the per-class object count (CCF) and the per-class object locations on a
// g×g grid (CLF), plus the count-optimized OD-COF classifier.
//
// Two interchangeable backends produce the estimates:
//
//   - Trained runs a real convolutional branch network (package nn) with
//     the paper's architecture — backbone, GAP, fully connected head and
//     class activation maps (Eq. 1) — on rasterised frames. It proves the
//     paper's training pipeline (Eq. 2 / Eq. 3 losses, Mask R-CNN-derived
//     labels) learns counting and localisation in pure Go at laptop scale.
//
//   - Calibrated is a statistical error model whose exact/±1/±2 count
//     accuracies and per-class localisation f1 are calibrated to the
//     accuracy profiles of Figures 7–15. It makes the full-scale
//     experiment suite reproducible in seconds while preserving the error
//     structure (heteroscedastic count noise, per-class miss rates,
//     cell-displacement distributions, false positives) that the query
//     results of Table III and the variance reductions of Table IV
//     depend on.
//
// A single Evaluate call yields every output at once — exactly like the
// real network, whose one forward pass produces both the count vector and
// all activation maps — and charges the technique's per-frame virtual cost
// (IC 1.5 ms, OD 1.9 ms) to a simclock.Clock once.
package filters

import (
	"fmt"

	"vmq/internal/grid"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

// Technique distinguishes the two filter families of Section II.
type Technique int

// Filter families.
const (
	// IC filters branch off an image-classification backbone (Section
	// II-A, VGG19 layer 5 in the paper).
	IC Technique = iota
	// OD filters branch off an object-detection backbone (Section II-B,
	// YOLOv2/Darknet layer 8 in the paper).
	OD
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case IC:
		return "IC"
	case OD:
		return "OD"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Cost returns the per-frame virtual cost of the technique's branch.
func (t Technique) Cost() simclock.Cost {
	if t == IC {
		return simclock.CostICFilter
	}
	return simclock.CostODFilter
}

// Output is the result of one filter forward pass over a frame.
type Output struct {
	// Total is the estimated total object count (the CF output).
	Total float64
	// Counts holds the per-class count estimates indexed by video.Class
	// (the CCF outputs).
	Counts [video.NumClasses]float64
	// Maps holds the thresholded per-class location maps indexed by
	// video.Class (the CLF outputs). Classes outside the backend's class
	// universe have nil maps.
	Maps [video.NumClasses]*grid.Binary
}

// Map returns the location map for class c, or an empty map of the given
// grid size when the class was not modelled.
func (o *Output) Map(c video.Class, g int) *grid.Binary {
	if m := o.Maps[c]; m != nil {
		return m
	}
	return grid.NewBinary(g)
}

// Backend produces filter outputs for frames.
type Backend interface {
	// Technique identifies the filter family.
	Technique() Technique
	// Grid returns the activation-map resolution g.
	Grid() int
	// Evaluate runs the branch network (or its calibrated surrogate) on
	// one frame, charging the per-frame cost to the backend's clock.
	Evaluate(f *video.Frame) *Output
}

// BatchBackend is implemented by backends with a native multi-frame
// evaluation path that amortises per-call overhead (clock locking,
// dispatch, batched tensor layouts and GEMMs) across a whole batch.
type BatchBackend interface {
	Backend
	// EvaluateBatch evaluates frames in order, appending one Output per
	// frame to dst and returning the extended slice (dst may be nil). It
	// must produce the same outputs as len(frames) Evaluate calls and
	// charge the same total cost.
	//
	// Aliasing rule: the returned slice shares dst's backing array when
	// capacity allows, so callers on a hot path pass dst[:0] of a slice
	// they own and reuse it between calls. The *Output values themselves
	// may be shared with other callers (memoised backends return cached
	// pointers) and must be treated as immutable.
	EvaluateBatch(frames []*video.Frame, dst []*Output) []*Output
}

// EvaluateBatch evaluates frames through b's native batch path when it
// implements BatchBackend, and otherwise falls back to one Evaluate call
// per frame. Allocation-sensitive callers use EvaluateBatchInto.
func EvaluateBatch(b Backend, frames []*video.Frame) []*Output {
	return EvaluateBatchInto(b, frames, nil)
}

// EvaluateBatchInto evaluates frames like EvaluateBatch, appending the
// outputs to dst and returning the extended slice. It is the wrapper the
// execution engines use, so any backend gains batching by implementing
// BatchBackend — no engine changes needed. The BatchBackend aliasing rule
// applies: the result may share dst's backing array, and the *Output
// values must not be mutated.
func EvaluateBatchInto(b Backend, frames []*video.Frame, dst []*Output) []*Output {
	if bb, ok := b.(BatchBackend); ok {
		return bb.EvaluateBatch(frames, dst)
	}
	for _, f := range frames {
		dst = append(dst, b.Evaluate(f))
	}
	return dst
}

// Parallel is implemented by backends whose batched evaluation can fan
// work (rasterisation, GEMMs) across a bounded number of workers. It is
// how the server's coalescing broker hands each evaluator a slice of one
// shared CPU budget instead of letting every merged batch oversubscribe
// GOMAXPROCS.
type Parallel interface {
	Backend
	// SetEvalWorkers bounds the workers one EvaluateBatch call may use;
	// 0 restores the default (size to GOMAXPROCS). Worker count never
	// affects output bytes — only wall-clock — so the scheduler may
	// retune it between batches. Not safe to call concurrently with an
	// in-flight evaluation.
	SetEvalWorkers(n int)
	// ForwardFlops estimates the multiply-add flops of evaluating one
	// frame, the scheduler's threshold for when fanning a merged batch
	// across cores pays for the coordination.
	ForwardFlops() int64
}

// SetEvalWorkers applies the worker budget to b when it supports one.
func SetEvalWorkers(b Backend, n int) {
	if p, ok := b.(Parallel); ok {
		p.SetEvalWorkers(n)
	}
}

// ForwardFlopsOf returns b's per-frame flops estimate, or 0 when b does
// not declare one.
func ForwardFlopsOf(b Backend) int64 {
	if p, ok := b.(Parallel); ok {
		return p.ForwardFlops()
	}
	return 0
}

// ConcurrentBackend is implemented by backends whose Evaluate may be
// called from multiple goroutines at once with per-frame deterministic
// results (output depends only on the frame, not on call order).
type ConcurrentBackend interface {
	Backend
	// ConcurrentSafe reports whether concurrent Evaluate calls are safe.
	ConcurrentSafe() bool
}

// ConcurrentSafe reports whether b's Evaluate may be fanned out across a
// worker pool. Backends that do not declare themselves via
// ConcurrentBackend are conservatively treated as single-threaded (the
// trained CNN backends reuse forward-pass activation buffers).
func ConcurrentSafe(b Backend) bool {
	cb, ok := b.(ConcurrentBackend)
	return ok && cb.ConcurrentSafe()
}

// CountVariant selects the tolerance of a count filter: 0 is the exact
// filter, 1 and 2 the paper's CF-1/CCF-1 and CF-2/CCF-2 variants.
type CountVariant int

// LocationVariant selects the Manhattan tolerance of a CLF filter: 0 is
// exact-cell, 1 and 2 the paper's CLF-1 and CLF-2 variants.
type LocationVariant int
