package filters

import (
	"hash/fnv"
	"math"
	"math/rand/v2"

	"vmq/internal/grid"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

// Calibration holds the error-model parameters of a Calibrated backend.
// The defaults below were tuned so that the reproduction's Figures 7–15
// match the paper's qualitative profile: IC slightly ahead of OD on exact
// counts, OD far ahead of IC on localisation, OD-COF collapsing as
// objects/frame grows, rare classes easier to count but harder to locate.
type Calibration struct {
	// Count noise is Gaussian with standard deviation
	// (Sigma0 + Sigma1·count) · count/(count+1.5): essentially exact for
	// empty and near-empty frames (telling 0 from 1 from 2 objects is an
	// easy classification problem, which is how the paper's filters reach
	// 100 % query accuracy on the sparse Jackson stream) and degrading
	// with density exactly as Figure 7 shows.
	CountSigma0 float64
	CountSigma1 float64

	// Localisation: each true object is missed with probability
	// MissBase + MissRarity·(1 − classFrequency) — rarer classes supply
	// fewer training examples, so their location accuracy is lower
	// (Section IV-A).
	MissBase   float64
	MissRarity float64
	// Q0 is the probability a localised object lands in its exact grid
	// cell; otherwise it is displaced by Manhattan distance 1 + Geometric
	// (DispTail).
	Q0       float64
	DispTail float64
	// FPRate is the expected number of spurious cells per class per frame.
	FPRate float64
}

// ICCalibration parameterises the IC family: the ImageNet-pretrained
// classifier features transfer well to counting (small count noise) but
// the class activation maps localise coarsely (low Q0, larger miss and
// false-positive rates).
func ICCalibration() Calibration {
	return Calibration{
		CountSigma0: 0.14, CountSigma1: 0.052,
		MissBase: 0.12, MissRarity: 0.22,
		Q0: 0.40, DispTail: 0.55,
		FPRate: 0.35,
	}
}

// ODCalibration parameterises the OD family: detector features localise
// on the exact grid cell most of the time (high Q0, low miss/FP) and count
// almost as well as IC.
func ODCalibration() Calibration {
	return Calibration{
		CountSigma0: 0.17, CountSigma1: 0.058,
		MissBase: 0.01, MissRarity: 0.04,
		Q0: 0.82, DispTail: 0.45,
		FPRate: 0.06,
	}
}

// COFCalibration parameterises OD-COF, the count-only classifier of
// Section II-B1: competitive at low densities, collapsing as the number of
// objects per frame grows ("utilizing the convolution features only for
// count estimation is ineffective as the number of objects per frame
// increases"). It produces no location maps.
func COFCalibration() Calibration {
	return Calibration{CountSigma0: 0.06, CountSigma1: 0.10}
}

// HighFidelityCalibration models a filter trained to near-saturation on a
// single fixed camera: sub-1% miss and false-positive rates and almost
// always the exact grid cell. It exists for the control-variate ablation —
// Table IV's largest variance reductions (up to 230×) require this level
// of filter/ground-truth agreement, above what the Figure 7/15 accuracy
// profiles imply for the standard calibrations.
func HighFidelityCalibration() Calibration {
	return Calibration{
		CountSigma0: 0.02, CountSigma1: 0.01,
		MissBase: 0.002, MissRarity: 0.002,
		Q0: 0.96, DispTail: 0.3,
		FPRate: 0.004,
	}
}

// Calibrated is the statistical filter backend. It is deterministic per
// frame: evaluating the same frame twice yields the identical output, as a
// fixed trained network would.
type Calibrated struct {
	Tech      Technique
	Cal       Calibration
	Clock     *simclock.Clock
	G         int
	CountOnly bool // OD-COF: suppress maps

	classFreq [video.NumClasses]float64
	classes   []video.Class
	seed      uint64
}

// NewCalibrated builds a calibrated backend for a dataset profile. The
// profile supplies the class universe and frequencies the error model
// needs (rarity effects). Grid size g defaults to 56 when zero, matching
// the paper's branch placement.
func NewCalibrated(tech Technique, cal Calibration, profile video.Profile, g int, seed uint64, clock *simclock.Clock) *Calibrated {
	if g == 0 {
		g = 56
	}
	c := &Calibrated{Tech: tech, Cal: cal, Clock: clock, G: g, seed: seed}
	for _, cm := range profile.Classes {
		c.classFreq[cm.Class] = cm.P
		c.classes = append(c.classes, cm.Class)
	}
	// Static scene objects (e.g. stop signs) are trivially learnable and
	// modelled as an always-known class.
	for _, so := range profile.Static {
		if c.classFreq[so.Class] == 0 {
			c.classFreq[so.Class] = 1
			c.classes = append(c.classes, so.Class)
		}
	}
	return c
}

// NewICFilter is shorthand for the standard IC backend over a profile.
func NewICFilter(profile video.Profile, seed uint64, clock *simclock.Clock) *Calibrated {
	return NewCalibrated(IC, ICCalibration(), profile, 56, seed, clock)
}

// NewODFilter is shorthand for the standard OD backend over a profile.
func NewODFilter(profile video.Profile, seed uint64, clock *simclock.Clock) *Calibrated {
	return NewCalibrated(OD, ODCalibration(), profile, 56, seed, clock)
}

// NewCOFFilter is shorthand for the OD-COF count-only backend.
func NewCOFFilter(profile video.Profile, seed uint64, clock *simclock.Clock) *Calibrated {
	c := NewCalibrated(OD, COFCalibration(), profile, 56, seed, clock)
	c.CountOnly = true
	return c
}

// Technique implements Backend.
func (c *Calibrated) Technique() Technique { return c.Tech }

// Grid implements Backend.
func (c *Calibrated) Grid() int { return c.G }

// Evaluate implements Backend.
func (c *Calibrated) Evaluate(f *video.Frame) *Output {
	c.Clock.Charge(c.Tech.Cost(), 1)
	return c.eval(f)
}

// EvaluateBatch implements BatchBackend: identical per-frame outputs, but
// the virtual cost is charged (and the clock mutex taken) once for the
// whole batch. Outputs are appended to dst per the interface's aliasing
// rule.
func (c *Calibrated) EvaluateBatch(frames []*video.Frame, dst []*Output) []*Output {
	c.Clock.Charge(c.Tech.Cost(), int64(len(frames)))
	for _, f := range frames {
		dst = append(dst, c.eval(f))
	}
	return dst
}

// ConcurrentSafe implements ConcurrentBackend: evaluation state is a
// per-frame derived RNG and the clock is mutex-guarded, so concurrent
// calls are race-free and per-frame deterministic.
func (c *Calibrated) ConcurrentSafe() bool { return true }

// eval produces the frame's output without charging the clock.
func (c *Calibrated) eval(f *video.Frame) *Output {
	rng := c.frameRNG(f)
	out := &Output{}

	// Per-class counts with heteroscedastic Gaussian noise. The
	// count/(count+1.5) ramp keeps near-empty frames essentially exact.
	hist := f.ClassHistogram()
	for _, cls := range c.classes {
		truth := float64(hist[cls])
		est := truth + rng.NormFloat64()*c.countSigma(truth)
		if est < 0 {
			est = 0
		}
		out.Counts[cls] = est
	}
	// Total count: its own regression head in the real network, so its own
	// noise draw scaled by the total.
	total := float64(f.Count())
	out.Total = total + rng.NormFloat64()*c.countSigma(total)
	if out.Total < 0 {
		out.Total = 0
	}

	if c.CountOnly {
		return out
	}

	// Per-class location maps.
	for _, cls := range c.classes {
		m := grid.NewBinary(c.G)
		pMiss := c.Cal.MissBase + c.Cal.MissRarity*(1-c.classFreq[cls])
		for _, obj := range f.Objects {
			if obj.Class != cls {
				continue
			}
			if rng.Float64() < pMiss {
				continue
			}
			i, j := grid.CellOf(f.Bounds, c.G, obj.Box.Center())
			i, j = c.displace(rng, i, j)
			m.Set(true, i, j)
		}
		// False positives.
		for k := poisson(rng, c.Cal.FPRate); k > 0; k-- {
			m.Set(true, rng.IntN(c.G), rng.IntN(c.G))
		}
		out.Maps[cls] = m
	}
	return out
}

// countSigma is the count-noise standard deviation at true count c.
func (c *Calibrated) countSigma(truth float64) float64 {
	return (c.Cal.CountSigma0 + c.Cal.CountSigma1*truth) * truth / (truth + 1.5)
}

// displace moves a cell by Manhattan distance 0 (probability Q0) or
// 1+Geometric(DispTail), clamped to the grid.
func (c *Calibrated) displace(rng *rand.Rand, i, j int) (int, int) {
	if rng.Float64() < c.Cal.Q0 {
		return i, j
	}
	d := 1
	for rng.Float64() < c.Cal.DispTail {
		d++
	}
	for step := 0; step < d; step++ {
		switch rng.IntN(4) {
		case 0:
			i--
		case 1:
			i++
		case 2:
			j--
		default:
			j++
		}
	}
	return clampInt(i, 0, c.G-1), clampInt(j, 0, c.G-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// poisson draws from Poisson(lambda) by inversion (lambda is small here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// frameRNG derives a deterministic per-frame generator so that repeated
// evaluation of the same frame returns identical estimates, as a fixed
// network would.
func (c *Calibrated) frameRNG(f *video.Frame) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(f.CameraID))
	var buf [8]byte
	putUint64(buf[:], uint64(f.Index))
	h.Write(buf[:])
	putUint64(buf[:], c.seed)
	h.Write(buf[:])
	buf[0] = byte(c.Tech)
	if c.CountOnly {
		buf[0] |= 0x80
	}
	h.Write(buf[:1])
	return rand.New(rand.NewPCG(h.Sum64(), 0x2545f4914f6cdd1d))
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
