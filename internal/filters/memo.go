package filters

import (
	"sync"
	"sync/atomic"

	"vmq/internal/video"
)

// Shared wraps a Backend with a bounded per-frame output cache, turning N
// query pipelines that scan the same feed into one shared scan: whichever
// pipeline reaches a frame first runs the network (and pays its virtual
// cost); every other pipeline gets the cached Output for free. This is
// sound for exactly the backends the pipelined executor can fan out — the
// output must depend only on the frame, not on call order — and the
// calibrated backends document that property. A backend that is not
// concurrency-safe is still usable: Shared serialises its calls and the
// memoisation makes the combination safe to share across goroutines.
//
// Entries are keyed by frame pointer (the fan-out tee delivers the same
// *Frame to every subscriber) and evicted first-in-first-out once the
// cache exceeds its capacity. Eviction never breaks correctness — a
// pipeline trailing further behind than the capacity simply re-evaluates —
// so the capacity only needs to cover the skew the bounded fan-out
// channels allow.
type Shared struct {
	inner    Backend
	capacity int
	serial   bool // inner is not concurrency-safe: serialise its calls

	mu      sync.Mutex
	entries map[*video.Frame]*sharedEntry
	order   []*video.Frame // FIFO eviction queue
	evalMu  sync.Mutex

	hits   atomic.Int64
	misses atomic.Int64
}

// sharedEntry latches one frame's output: the Once guarantees a single
// inner evaluation per cached frame even when pipelines race to it.
type sharedEntry struct {
	once sync.Once
	out  *Output
}

// NewShared wraps inner with a cache of the given capacity (frames).
// Capacity defaults to 4096 when non-positive — comfortably above the
// skew the server's bounded channels permit between queries on one feed.
func NewShared(inner Backend, capacity int) *Shared {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Shared{
		inner:    inner,
		capacity: capacity,
		serial:   !ConcurrentSafe(inner),
		entries:  make(map[*video.Frame]*sharedEntry, capacity),
	}
}

// Inner returns the wrapped backend.
func (s *Shared) Inner() Backend { return s.inner }

// Technique implements Backend.
func (s *Shared) Technique() Technique { return s.inner.Technique() }

// Grid implements Backend.
func (s *Shared) Grid() int { return s.inner.Grid() }

// ConcurrentSafe implements ConcurrentBackend: the cache is mutex-guarded
// and inner calls are serialised when the inner backend needs it, so
// Shared may always be fanned out.
func (s *Shared) ConcurrentSafe() bool { return true }

// Stats reports cache hits (outputs served without an inner evaluation)
// and misses (inner evaluations) so far.
func (s *Shared) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// Evaluate implements Backend. The first caller for a frame evaluates the
// inner backend (charging its clock once); concurrent callers for the
// same frame block until that evaluation completes and then share its
// output.
func (s *Shared) Evaluate(f *video.Frame) *Output {
	s.mu.Lock()
	e, ok := s.entries[f]
	if !ok {
		e = &sharedEntry{}
		s.entries[f] = e
		s.order = append(s.order, f)
		if len(s.order) > s.capacity {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.entries, oldest)
		}
	}
	s.mu.Unlock()
	e.once.Do(func() {
		s.misses.Add(1)
		if s.serial {
			s.evalMu.Lock()
			defer s.evalMu.Unlock()
		}
		e.out = s.inner.Evaluate(f)
	})
	if ok {
		s.hits.Add(1)
	}
	return e.out
}
