package filters

import (
	"sync"
	"sync/atomic"

	"vmq/internal/video"
)

// Shared wraps a Backend with a bounded per-frame output cache, turning N
// query pipelines that scan the same feed into one shared scan: whichever
// pipeline reaches a frame first runs the network (and pays its virtual
// cost); every other pipeline gets the cached Output for free. This is
// sound for exactly the backends the pipelined executor can fan out — the
// output must depend only on the frame, not on call order — and the
// calibrated backends document that property. A backend that is not
// concurrency-safe is still usable: Shared serialises its calls and the
// memoisation makes the combination safe to share across goroutines.
//
// Shared is batch-aware: EvaluateBatch claims every uncached frame of the
// batch in one pass and fills the memo with a single inner batch
// evaluation, so the server's micro-batched shared scan pays batched GEMM
// rates while individual per-frame lookups stay cheap hits.
//
// Entries are keyed by frame pointer (the fan-out tee delivers the same
// *Frame to every subscriber) and evicted first-in-first-out once the
// cache exceeds its capacity. Eviction never breaks correctness — a
// pipeline trailing further behind than the capacity simply re-evaluates —
// so the capacity only needs to cover the skew the bounded fan-out
// channels allow.
type Shared struct {
	inner    Backend
	capacity int
	serial   bool // inner is not concurrency-safe: serialise its calls

	mu      sync.Mutex
	entries map[*video.Frame]*sharedEntry
	order   []*video.Frame // FIFO eviction queue
	evalMu  sync.Mutex

	hits   atomic.Int64
	misses atomic.Int64
}

// sharedEntry latches one frame's output. The caller that created the
// entry owns filling it: it evaluates the inner backend, sets out and
// closes ready; every other caller blocks on ready and shares the output.
// Batch claims latch many entries with one inner evaluation. If the
// owner's inner evaluation panics, it sets poison (the panic value)
// before closing ready and removes the entry from the cache: waiters
// re-panic with the same value instead of blocking forever on a channel
// nobody will close, and each query's pipeline barrier converts that
// into its own typed failure — one poisoned backend call fails every
// query that needed the frame, never the process.
type sharedEntry struct {
	ready  chan struct{}
	out    *Output
	poison any
}

// NewShared wraps inner with a cache of the given capacity (frames).
// Capacity defaults to 4096 when non-positive — comfortably above the
// skew the server's bounded channels permit between queries on one feed.
func NewShared(inner Backend, capacity int) *Shared {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Shared{
		inner:    inner,
		capacity: capacity,
		serial:   !ConcurrentSafe(inner),
		entries:  make(map[*video.Frame]*sharedEntry, capacity),
	}
}

// Inner returns the wrapped backend.
func (s *Shared) Inner() Backend { return s.inner }

// Technique implements Backend.
func (s *Shared) Technique() Technique { return s.inner.Technique() }

// Grid implements Backend.
func (s *Shared) Grid() int { return s.inner.Grid() }

// ConcurrentSafe implements ConcurrentBackend: the cache is mutex-guarded
// and inner calls are serialised when the inner backend needs it, so
// Shared may always be fanned out.
func (s *Shared) ConcurrentSafe() bool { return true }

// Stats reports cache hits (outputs served without an inner evaluation)
// and misses (inner evaluations) so far.
func (s *Shared) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// Entries reports how many frames are currently memoised. It never
// exceeds the construction capacity: a long-running feed's memo reaches
// steady state and entries for frames past the eviction watermark are
// released rather than accumulated.
func (s *Shared) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// claim returns the entry for f and whether the caller owns filling it
// (true exactly once per cached lifetime of the frame).
func (s *Shared) claim(f *video.Frame) (*sharedEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[f]; ok {
		return e, false
	}
	e := &sharedEntry{ready: make(chan struct{})}
	s.entries[f] = e
	s.order = append(s.order, f)
	if len(s.order) > s.capacity {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
	}
	return e, true
}

// Evaluate implements Backend. The first caller for a frame evaluates the
// inner backend (charging its clock once); concurrent callers for the
// same frame block until that evaluation completes and then share its
// output.
func (s *Shared) Evaluate(f *video.Frame) *Output {
	e, owned := s.claim(f)
	if !owned {
		s.hits.Add(1)
		<-e.ready
		if e.poison != nil {
			panic(e.poison)
		}
		return e.out
	}
	s.misses.Add(1)
	out, pval := s.evalOne(f)
	if pval != nil {
		s.poisonEntries([]*video.Frame{f}, []*sharedEntry{e}, pval)
		panic(pval)
	}
	e.out = out
	close(e.ready)
	return e.out
}

// evalOne runs the inner backend on one frame, converting a panic into
// a returned value so evalMu is always released and the caller can
// poison the entry before re-panicking.
func (s *Shared) evalOne(f *video.Frame) (out *Output, pval any) {
	defer func() {
		if p := recover(); p != nil {
			pval = p
		}
	}()
	if s.serial {
		s.evalMu.Lock()
		defer s.evalMu.Unlock()
	}
	return s.inner.Evaluate(f), nil
}

// evalBatch is evalOne's batch counterpart.
func (s *Shared) evalBatch(frames []*video.Frame) (outs []*Output, pval any) {
	defer func() {
		if p := recover(); p != nil {
			outs, pval = nil, p
		}
	}()
	if s.serial {
		s.evalMu.Lock()
		defer s.evalMu.Unlock()
	}
	return EvaluateBatchInto(s.inner, frames, nil), nil
}

// poisonEntries marks entries whose fill panicked: waiters re-panic
// with the same value, and the entries leave the cache so a later claim
// retries the backend instead of serving a latched failure forever.
func (s *Shared) poisonEntries(frames []*video.Frame, entries []*sharedEntry, pval any) {
	for _, e := range entries {
		e.poison = pval
		close(e.ready)
	}
	s.mu.Lock()
	for i, f := range frames {
		if cur, ok := s.entries[f]; ok && cur == entries[i] {
			delete(s.entries, f)
		}
	}
	s.mu.Unlock()
}

// EvaluateBatch implements BatchBackend: uncached frames are claimed in
// one pass and evaluated through the inner backend's batch path in a
// single call (one clock transaction, batched GEMMs for the trained
// backends); cached frames are served from the memo. Appends to dst per
// the interface's aliasing rule. Concurrent batches racing over
// overlapping frames each evaluate only the frames they claimed first,
// then wait for the rest — every frame is still evaluated exactly once
// per cached lifetime.
func (s *Shared) EvaluateBatch(frames []*video.Frame, dst []*Output) []*Output {
	if len(frames) == 0 {
		return dst
	}
	entries := make([]*sharedEntry, len(frames))
	var ownedFrames []*video.Frame
	var ownedEntries []*sharedEntry
	for i, f := range frames {
		e, owned := s.claim(f)
		entries[i] = e
		if owned {
			ownedFrames = append(ownedFrames, f)
			ownedEntries = append(ownedEntries, e)
		}
	}
	s.misses.Add(int64(len(ownedFrames)))
	s.hits.Add(int64(len(frames) - len(ownedFrames)))
	if len(ownedFrames) > 0 {
		// Fill owned entries before waiting on anyone else's: claim order
		// guarantees another batch can only be waiting on entries we own,
		// never the reverse cyclically, so this cannot deadlock.
		outs, pval := s.evalBatch(ownedFrames)
		if pval != nil {
			s.poisonEntries(ownedFrames, ownedEntries, pval)
			panic(pval)
		}
		for i, e := range ownedEntries {
			e.out = outs[i]
			close(e.ready)
		}
	}
	for _, e := range entries {
		<-e.ready
		if e.poison != nil {
			panic(e.poison)
		}
		dst = append(dst, e.out)
	}
	return dst
}
