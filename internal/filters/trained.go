package filters

import (
	"io"
	"math/rand/v2"
	"sync"

	"vmq/internal/geom"
	"vmq/internal/grid"
	"vmq/internal/nn"
	"vmq/internal/simclock"
	"vmq/internal/tensor"
	"vmq/internal/video"
)

// Trained is the real-CNN filter backend: frames are rasterised and passed
// through a CountLocNet branch network whose architecture mirrors the
// paper's Figure 2 (IC) or Figure 4 (OD). The network is trained with the
// paper's pipeline — ground-truth labels produced by the oracle detector
// standing in for Mask R-CNN, the Eq. 2 multi-task loss, and the staged
// count-then-localization schedule of Section II-A.
type Trained struct {
	Tech  Technique
	Net   *nn.CountLocNet
	Clock *simclock.Clock
	// Img is the rasterisation resolution (square).
	Img int
	// Threshold converts activation maps to binary occupancy (the paper
	// uses 0.2 for OD filters).
	Threshold float32
	// NoiseSeed feeds the rasteriser's sensor noise.
	NoiseSeed uint64

	classes []video.Class

	// arena and batch are the reusable inference buffers behind the
	// batched forward pass; they are what makes Trained single-threaded
	// (it deliberately does not implement ConcurrentBackend — the
	// executors serialise its calls, and batching inside one call is where
	// its parallelism comes from).
	arena nn.Arena
	batch *tensor.Tensor

	// keyOnce/key cache the CoalesceKey fingerprint (see coalesce.go).
	keyOnce sync.Once
	key     string
}

// TrainedConfig controls training of a Trained backend.
type TrainedConfig struct {
	// Img is the rasterised frame size (default 48, giving a 12×12 grid
	// with the standard backbones — the paper's 448→56 geometry at 1/9
	// scale).
	Img int
	// Channels is the backbone feature-map depth d (default 24).
	Channels int
	// Frames is the number of training frames to draw (default 400).
	Frames int
	// Epochs is the number of passes over the training frames (default 3).
	Epochs int
	// LR is the optimizer learning rate (default 1e-3; the paper's 1e-4 is
	// tuned for far longer schedules).
	LR float64
	// Seed drives weight init, frame generation and shuffling.
	Seed uint64
}

func (c *TrainedConfig) defaults() {
	if c.Img == 0 {
		c.Img = 48
	}
	if c.Channels == 0 {
		c.Channels = 24
	}
	if c.Frames == 0 {
		c.Frames = 400
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// TrainFilter trains a Trained backend for the profile following the
// paper's recipe: labels come from the ground-truth annotator (the
// Mask R-CNN stand-in), the loss is Eq. 2 with per-class weights equal to
// the fraction of training frames containing the class, and the schedule
// first optimizes counts only (β = 0) before enabling the localization
// term with (α, β) = (1, 10) and decaying β.
func TrainFilter(tech Technique, profile video.Profile, cfg TrainedConfig, clock *simclock.Clock) *Trained {
	cfg.defaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6c62272e07bb0142))
	classes := make([]video.Class, 0, len(profile.Classes))
	for _, cm := range profile.Classes {
		classes = append(classes, cm.Class)
	}
	g := cfg.Img / 4

	var backbone *nn.Sequential
	if tech == IC {
		backbone = nn.ICBackbone(rng, 3, cfg.Img, cfg.Channels)
	} else {
		backbone = nn.ODBackbone(rng, 3, cfg.Img, cfg.Channels)
	}
	net := nn.NewCountLocNet(rng, backbone, cfg.Channels, g, len(classes))

	// Materialise the training set with ground-truth annotations.
	src := video.NewStream(profile, cfg.Seed+1)
	frames := src.Take(cfg.Frames)
	inputs := make([]*tensor.Tensor, len(frames))
	countLabels := make([]*tensor.Tensor, len(frames))
	mapLabels := make([]*tensor.Tensor, len(frames))
	classSeen := make([]float64, len(classes))
	for i, f := range frames {
		inputs[i] = video.Render(f, cfg.Img, cfg.Img, cfg.Seed+2)
		cl := tensor.New(len(classes))
		ml := tensor.New(len(classes), g, g)
		for ci, cls := range classes {
			cl.Data[ci] = float32(f.CountClass(cls))
			if cl.Data[ci] > 0 {
				classSeen[ci]++
			}
			bm := grid.FromBoxes(boxesOf(f, cls), f.Bounds, g, 0)
			for k, on := range bm.Cells {
				if on {
					ml.Data[ci*g*g+k] = 1
				}
			}
		}
		countLabels[i] = cl
		mapLabels[i] = ml
	}
	weights := make([]float64, len(classes))
	for i := range weights {
		weights[i] = classSeen[i] / float64(len(frames))
		if weights[i] == 0 {
			weights[i] = 1.0 / float64(len(frames))
		}
	}

	// Optimizers and losses follow the paper: IC trains with Adam under
	// the Eq. 2 multi-task loss and the staged count-then-localization
	// schedule; OD trains with SGD (momentum 0.9, weight decay 5e-4)
	// under the Eq. 3 branch loss from the start.
	order := rng.Perm(len(frames))
	if tech == IC {
		opt := nn.NewAdam(net.Params(), cfg.LR, 5e-4)
		loss := &nn.MultiTaskLoss{Alpha: 1, Beta: 0, ClassWeights: weights}
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			switch {
			case epoch == 0:
				loss.Beta = 0 // counts only, as in the paper's first phase
			case epoch == 1:
				loss.Beta = 10
			default:
				loss.Beta /= 2 // gradual decay, α fixed at 1
			}
			for _, i := range order {
				counts, maps := net.Forward(inputs[i])
				_, gc, gm := loss.Eval(counts, countLabels[i], maps, mapLabels[i])
				net.Backward(gc, gm)
				opt.Step()
			}
		}
	} else {
		opt := nn.NewSGD(net.Params(), cfg.LR, 0.9, 5e-4)
		loss := nn.DefaultBranchLoss()
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for _, i := range order {
				counts, maps := net.Forward(inputs[i])
				_, gc, gm := loss.Eval(counts, countLabels[i], maps, mapLabels[i])
				net.Backward(gc, gm)
				opt.Step()
			}
		}
	}

	return &Trained{
		Tech: tech, Net: net, Clock: clock,
		Img: cfg.Img, Threshold: 0.2, NoiseSeed: cfg.Seed + 2,
		classes: classes,
	}
}

func boxesOf(f *video.Frame, cls video.Class) []geom.Rect {
	var out []geom.Rect
	for _, o := range f.Objects {
		if o.Class == cls {
			out = append(out, o.Box)
		}
	}
	return out
}

// TrainedCOF is the real-CNN counterpart of the OD-COF filter (Section
// II-B1): a count-only regression branch with no location maps, trained
// end to end under SmoothL1 on total object counts.
type TrainedCOF struct {
	Net       *nn.CountOnlyNet
	Clock     *simclock.Clock
	Img       int
	NoiseSeed uint64

	arena nn.Arena
	batch *tensor.Tensor

	keyOnce sync.Once
	key     string
}

// TrainCOF trains the count-optimized classifier on rasterised frames of
// the profile, labelling each frame with its annotated total object count
// as the paper does ("we obtain the number of objects for each frame
// detecting all objects and counting them").
func TrainCOF(profile video.Profile, cfg TrainedConfig, clock *simclock.Clock) *TrainedCOF {
	cfg.defaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xcbf29ce484222325))
	net := nn.NewCountOnlyNet(rng, 3, cfg.Img)
	opt := nn.NewAdam(net.Params(), cfg.LR, 5e-4)
	src := video.NewStream(profile, cfg.Seed+1)
	frames := src.Take(cfg.Frames)
	inputs := make([]*tensor.Tensor, len(frames))
	labels := make([]float64, len(frames))
	for i, f := range frames {
		inputs[i] = video.Render(f, cfg.Img, cfg.Img, cfg.Seed+2)
		labels[i] = float64(f.Count())
	}
	order := rng.Perm(len(frames))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, i := range order {
			net.TrainStep(inputs[i], labels[i], opt)
		}
	}
	return &TrainedCOF{Net: net, Clock: clock, Img: cfg.Img, NoiseSeed: cfg.Seed + 2}
}

// Technique implements Backend: COF branches off the detector backbone.
func (t *TrainedCOF) Technique() Technique { return OD }

// Grid implements Backend; COF produces no location maps.
func (t *TrainedCOF) Grid() int { return 1 }

// SetEvalWorkers implements Parallel (see Trained.SetEvalWorkers).
func (t *TrainedCOF) SetEvalWorkers(n int) { t.arena.Workers = n }

// ForwardFlops implements Parallel.
func (t *TrainedCOF) ForwardFlops() int64 { return t.Net.ForwardFlops(3, t.Img, t.Img) }

// Evaluate implements Backend: only the total count is populated. Like
// Trained, it routes through the batched pass with a batch of one.
func (t *TrainedCOF) Evaluate(f *video.Frame) *Output {
	var out [1]*Output
	t.EvaluateBatch([]*video.Frame{f}, out[:0])
	return out[0]
}

// EvaluateBatch implements BatchBackend for the count-only branch.
func (t *TrainedCOF) EvaluateBatch(frames []*video.Frame, dst []*Output) []*Output {
	if len(frames) == 0 {
		return dst
	}
	t.Clock.Charge(OD.Cost(), int64(len(frames)))
	var batch *tensor.Tensor
	batch, t.batch = renderBatchInto(t.batch, frames, t.Img, t.NoiseSeed, t.arena.Workers)
	t.arena.Reset()
	totals := t.Net.ForwardBatch(&t.arena, batch)
	for i := range frames {
		dst = append(dst, &Output{Total: float64(totals.Data[i])})
	}
	return dst
}

// NewUntrained builds a Trained backend with freshly initialised weights
// and no training — the skeleton that LoadWeights restores a saved model
// into. The configuration must match the one the saved model was trained
// with.
func NewUntrained(tech Technique, profile video.Profile, cfg TrainedConfig, clock *simclock.Clock) *Trained {
	cfg.defaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6c62272e07bb0142))
	classes := make([]video.Class, 0, len(profile.Classes))
	for _, cm := range profile.Classes {
		classes = append(classes, cm.Class)
	}
	g := cfg.Img / 4
	var backbone *nn.Sequential
	if tech == IC {
		backbone = nn.ICBackbone(rng, 3, cfg.Img, cfg.Channels)
	} else {
		backbone = nn.ODBackbone(rng, 3, cfg.Img, cfg.Channels)
	}
	net := nn.NewCountLocNet(rng, backbone, cfg.Channels, g, len(classes))
	return &Trained{
		Tech: tech, Net: net, Clock: clock,
		Img: cfg.Img, Threshold: 0.2, NoiseSeed: cfg.Seed + 2,
		classes: classes,
	}
}

// SaveWeights serialises the trained network's parameters.
func (t *Trained) SaveWeights(w io.Writer) error {
	return nn.SaveParams(w, t.Net.Params())
}

// LoadWeights restores parameters saved by SaveWeights into this backend.
// The architectures must match exactly.
func (t *Trained) LoadWeights(r io.Reader) error {
	return nn.LoadParams(r, t.Net.Params())
}

// Technique implements Backend.
func (t *Trained) Technique() Technique { return t.Tech }

// Grid implements Backend.
func (t *Trained) Grid() int { return t.Net.Grid() }

// SetEvalWorkers implements Parallel: it bounds the workers one
// EvaluateBatch may spend on rasterisation and GEMMs (0 restores the
// GOMAXPROCS default). Worker count never changes output bytes.
func (t *Trained) SetEvalWorkers(n int) { t.arena.Workers = n }

// ForwardFlops implements Parallel: the per-frame multiply-add estimate
// for one rasterised frame through the branch network.
func (t *Trained) ForwardFlops() int64 { return t.Net.ForwardFlops(3, t.Img, t.Img) }

// Evaluate implements Backend. It routes through the batched forward pass
// with a batch of one, so chunked and per-frame execution produce
// bit-identical outputs (the batched kernels accumulate in the same order
// for every batch width).
func (t *Trained) Evaluate(f *video.Frame) *Output {
	var out [1]*Output
	t.EvaluateBatch([]*video.Frame{f}, out[:0])
	return out[0]
}

// EvaluateBatch implements BatchBackend: the frames are rasterised into
// one NCHW batch and pushed through a single ForwardBatch — one GEMM per
// layer for the whole batch, no per-frame allocations — with the total
// virtual cost charged in one clock transaction. Outputs are appended to
// dst per the interface's aliasing rule.
func (t *Trained) EvaluateBatch(frames []*video.Frame, dst []*Output) []*Output {
	if len(frames) == 0 {
		return dst
	}
	t.Clock.Charge(t.Tech.Cost(), int64(len(frames)))
	var batch *tensor.Tensor
	batch, t.batch = renderBatchInto(t.batch, frames, t.Img, t.NoiseSeed, t.arena.Workers)
	t.arena.Reset()
	counts, maps := t.Net.ForwardBatch(&t.arena, batch)
	g := t.Net.Grid()
	plane := g * g
	nc := t.Net.Classes()
	for i := range frames {
		out := &Output{}
		for ci, cls := range t.classes {
			v := float64(counts.Data[i*nc+ci])
			out.Counts[cls] = v
			out.Total += v
			gm := grid.NewMap(g)
			copy(gm.Cells, maps.Data[(i*nc+ci)*plane:(i*nc+ci+1)*plane])
			out.Maps[cls] = gm.Threshold(t.Threshold)
		}
		dst = append(dst, out)
	}
	return dst
}

// renderBatchInto rasterises frames into the reusable NCHW batch buffer
// buf (grown when too small): frame n's CHW image is the contiguous slab
// at n·3·img², so the rasteriser writes each frame in place with no
// copies. It returns the N×3×img×img view over the frames just rendered
// and the (possibly regrown) buffer for the caller to retain.
func renderBatchInto(buf *tensor.Tensor, frames []*video.Frame, img int, noiseSeed uint64, workers int) (batch, store *tensor.Tensor) {
	n := len(frames)
	if buf == nil || buf.Shape[0] < n {
		// Headroom for fluctuating coalesced batch widths, mirroring
		// nn.Arena's regrowth policy.
		buf = tensor.New(n+n/4+1, 3, img, img)
	}
	batch = &tensor.Tensor{Shape: []int{n, 3, img, img}, Data: buf.Data[:n*3*img*img]}
	video.RenderBatchInto(batch, frames, noiseSeed, workers)
	return batch, buf
}
