package filters

import (
	"bytes"
	"math"
	"testing"

	"vmq/internal/grid"
	"vmq/internal/metrics"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

func TestTechniqueStringsAndCosts(t *testing.T) {
	if IC.String() != "IC" || OD.String() != "OD" || Technique(7).String() == "" {
		t.Error("Technique.String wrong")
	}
	if IC.Cost().Name != "ic-filter" || OD.Cost().Name != "od-filter" {
		t.Error("Technique.Cost wrong")
	}
}

func TestCalibratedDeterministicPerFrame(t *testing.T) {
	p := video.Jackson()
	b := NewODFilter(p, 1, nil)
	f := video.NewStream(p, 2).Next()
	o1 := b.Evaluate(f)
	o2 := b.Evaluate(f)
	if o1.Total != o2.Total {
		t.Fatal("Total not deterministic per frame")
	}
	for c := 0; c < video.NumClasses; c++ {
		if o1.Counts[c] != o2.Counts[c] {
			t.Fatal("Counts not deterministic per frame")
		}
		m1, m2 := o1.Maps[c], o2.Maps[c]
		if (m1 == nil) != (m2 == nil) {
			t.Fatal("Maps presence differs")
		}
		if m1 != nil {
			for i := range m1.Cells {
				if m1.Cells[i] != m2.Cells[i] {
					t.Fatal("Maps not deterministic per frame")
				}
			}
		}
	}
}

func TestCalibratedDiffersAcrossFramesAndTechniques(t *testing.T) {
	p := video.Detrac()
	ic := NewICFilter(p, 1, nil)
	od := NewODFilter(p, 1, nil)
	s := video.NewStream(p, 3)
	sameTech, sameFrame := 0, 0
	const n = 50
	var prev float64
	for i := 0; i < n; i++ {
		f := s.Next()
		a, b := ic.Evaluate(f), od.Evaluate(f)
		if a.Total == b.Total {
			sameTech++
		}
		if i > 0 && a.Total == prev {
			sameFrame++
		}
		prev = a.Total
	}
	if sameTech > n/4 {
		t.Errorf("IC and OD produced identical totals on %d/%d frames", sameTech, n)
	}
	if sameFrame > n/4 {
		t.Errorf("consecutive frames produced identical totals %d/%d times", sameFrame, n)
	}
}

func TestCalibratedChargesClockOncePerEvaluate(t *testing.T) {
	clk := simclock.New()
	p := video.Jackson()
	b := NewICFilter(p, 1, clk)
	f := video.NewStream(p, 2).Next()
	b.Evaluate(f)
	b.Evaluate(f)
	if clk.Calls("ic-filter") != 2 {
		t.Fatalf("clock calls = %d", clk.Calls("ic-filter"))
	}
	if clk.Elapsed() != 2*simclock.CostICFilter.PerCall {
		t.Fatalf("elapsed = %v", clk.Elapsed())
	}
}

func TestCOFCountOnly(t *testing.T) {
	p := video.Detrac()
	b := NewCOFFilter(p, 1, nil)
	f := video.NewStream(p, 4).Next()
	o := b.Evaluate(f)
	for c := 0; c < video.NumClasses; c++ {
		if o.Maps[c] != nil {
			t.Fatal("COF produced location maps")
		}
	}
	if o.Total < 0 {
		t.Fatal("negative total")
	}
	// Output.Map falls back to an empty grid.
	if o.Map(video.Car, 56).CountOn() != 0 {
		t.Fatal("Map fallback not empty")
	}
}

// Count accuracy ordering across the three datasets must match Figure 7:
// sparse Jackson is easy for everyone, dense Detrac separates OD-COF from
// the CF filters, and tolerance always helps.
func TestCountAccuracyMatchesFigure7Shape(t *testing.T) {
	type result struct{ cof, ic, od metrics.CountAccuracy }
	results := map[string]*result{}
	for _, p := range video.Profiles() {
		r := &result{}
		cof := NewCOFFilter(p, 1, nil)
		ic := NewICFilter(p, 1, nil)
		od := NewODFilter(p, 1, nil)
		s := video.NewStream(p, 5)
		for i := 0; i < 1500; i++ {
			f := s.Next()
			truth := f.Count()
			r.cof.Observe(truth, cof.Evaluate(f).Total)
			r.ic.Observe(truth, ic.Evaluate(f).Total)
			r.od.Observe(truth, od.Evaluate(f).Total)
		}
		results[p.Name] = r
	}

	// Tolerance monotone for every technique and dataset.
	for name, r := range results {
		for _, ca := range []*metrics.CountAccuracy{&r.cof, &r.ic, &r.od} {
			if !(ca.Accuracy(0) <= ca.Accuracy(1) && ca.Accuracy(1) <= ca.Accuracy(2)) {
				t.Errorf("%s: tolerance not monotone: %v", name, ca)
			}
		}
	}
	// Jackson (sparse): everyone above 0.85 exact.
	j := results["jackson"]
	for _, acc := range []float64{j.cof.Accuracy(0), j.ic.Accuracy(0), j.od.Accuracy(0)} {
		if acc < 0.85 {
			t.Errorf("jackson exact accuracy too low: %v", acc)
		}
	}
	// Detrac (dense): OD-COF collapses well below IC and OD.
	d := results["detrac"]
	if d.cof.Accuracy(0) > d.ic.Accuracy(0)-0.1 {
		t.Errorf("detrac: OD-COF (%v) should trail IC (%v) by a wide margin",
			d.cof.Accuracy(0), d.ic.Accuracy(0))
	}
	// IC at least matches OD on exact counts (paper: "IC techniques
	// perform slightly better ... for count estimation").
	for name, r := range results {
		if r.ic.Accuracy(0) < r.od.Accuracy(0)-0.05 {
			t.Errorf("%s: IC exact (%v) fell below OD (%v)", name, r.ic.Accuracy(0), r.od.Accuracy(0))
		}
	}
	// Coral: the three techniques are comparable within ±1 ("all three
	// techniques perform the same").
	c := results["coral"]
	spread := math.Abs(c.ic.Accuracy(1) - c.od.Accuracy(1))
	if spread > 0.15 {
		t.Errorf("coral: IC/OD ±1 spread too wide: %v", spread)
	}
}

// Localisation f1 must match the Figure 15 shape: OD well above IC, rare
// classes below common ones, tolerance helps.
func TestLocationF1MatchesFigure15Shape(t *testing.T) {
	p := video.Detrac()
	ic := NewICFilter(p, 1, nil)
	od := NewODFilter(p, 1, nil)
	s := video.NewStream(p, 6)
	var icF1, odF1 [video.NumClasses]metrics.PRF
	var odF1r1 [video.NumClasses]metrics.PRF
	for i := 0; i < 600; i++ {
		f := s.Next()
		truthCars := grid.FromCenters(boxesOf(f, video.Car), f.Bounds, 56)
		truthBuses := grid.FromCenters(boxesOf(f, video.Bus), f.Bounds, 56)
		io, oo := ic.Evaluate(f), od.Evaluate(f)
		for _, cls := range []video.Class{video.Car, video.Bus} {
			truth := truthCars
			if cls == video.Bus {
				truth = truthBuses
			}
			tp, fp, fn := grid.Match(io.Map(cls, 56), truth, 0)
			icF1[cls].Add(tp, fp, fn)
			tp, fp, fn = grid.Match(oo.Map(cls, 56), truth, 0)
			odF1[cls].Add(tp, fp, fn)
			tp, fp, fn = grid.Match(oo.Map(cls, 56), truth, 1)
			odF1r1[cls].Add(tp, fp, fn)
		}
	}
	if odF1[video.Car].F1() < icF1[video.Car].F1()+0.15 {
		t.Errorf("OD f1 (%v) should be far above IC (%v)",
			odF1[video.Car].F1(), icF1[video.Car].F1())
	}
	if odF1[video.Car].F1() < 0.6 {
		t.Errorf("OD car f1 too low: %v", odF1[video.Car].F1())
	}
	// Rare class (bus) trails the common class (car) for OD.
	if odF1[video.Bus].F1() > odF1[video.Car].F1() {
		t.Errorf("rare class f1 (%v) above common class (%v)",
			odF1[video.Bus].F1(), odF1[video.Car].F1())
	}
	// Manhattan tolerance helps.
	if odF1r1[video.Car].F1() < odF1[video.Car].F1() {
		t.Errorf("CLF-1 f1 (%v) below exact (%v)",
			odF1r1[video.Car].F1(), odF1[video.Car].F1())
	}
}

// Counts correlate strongly with truth — the property control variates
// rely on (Section III: "provided the filters are good estimators ... the
// two variables would be highly correlated").
func TestCountsCorrelateWithTruth(t *testing.T) {
	p := video.Coral()
	b := NewODFilter(p, 1, nil)
	s := video.NewStream(p, 7)
	var sx, sy, sxx, syy, sxy float64
	const n = 800
	for i := 0; i < n; i++ {
		f := s.Next()
		x := float64(f.Count())
		y := b.Evaluate(f).Total
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	rho := cov / math.Sqrt(vx*vy)
	if rho < 0.95 {
		t.Fatalf("filter/truth correlation = %v, want > 0.95", rho)
	}
}

func TestStaticClassAlwaysLocalizable(t *testing.T) {
	// The Jackson profile carries a static stop sign; the backend must
	// model the class even though it is not in the spawn mix.
	p := video.Jackson()
	b := NewODFilter(p, 1, nil)
	s := video.NewStream(p, 8)
	found := 0
	const n = 200
	for i := 0; i < n; i++ {
		o := b.Evaluate(s.Next())
		if o.Maps[video.StopSign] != nil && o.Maps[video.StopSign].CountOn() > 0 {
			found++
		}
	}
	if found < n*3/4 {
		t.Fatalf("stop sign localised in only %d/%d frames", found, n)
	}
}

func TestTrainedCOFLearnsTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training skipped in -short mode")
	}
	p := video.Jackson()
	b := TrainCOF(p, TrainedConfig{Frames: 200, Epochs: 4, Img: 32, Seed: 4}, nil)
	if b.Technique() != OD || b.Grid() != 1 {
		t.Fatal("TrainedCOF metadata wrong")
	}
	s := video.NewStream(p, 88)
	var acc metrics.CountAccuracy
	for i := 0; i < 120; i++ {
		f := s.Next()
		out := b.Evaluate(f)
		acc.Observe(f.Count(), out.Total)
		for c := range out.Maps {
			if out.Maps[c] != nil {
				t.Fatal("COF produced location maps")
			}
		}
	}
	if acc.Accuracy(1) < 0.6 {
		t.Fatalf("trained COF ±1 accuracy = %v", acc.Accuracy(1))
	}
}

func TestTrainedSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training skipped in -short mode")
	}
	p := video.Jackson()
	cfg := TrainedConfig{Frames: 60, Epochs: 1, Img: 32, Channels: 8, Seed: 3}
	trained := TrainFilter(IC, p, cfg, nil)

	var buf bytes.Buffer
	if err := trained.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewUntrained(IC, p, cfg, nil)
	frame := video.NewStream(p, 55).Next()
	before := restored.Evaluate(frame)
	if err := restored.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after := restored.Evaluate(frame)
	want := trained.Evaluate(frame)
	if after.Total != want.Total {
		t.Fatalf("restored model differs: %v vs %v", after.Total, want.Total)
	}
	if before.Total == after.Total {
		t.Log("untrained and trained outputs coincided (possible but unlikely)")
	}
	for c := 0; c < video.NumClasses; c++ {
		if (after.Maps[c] == nil) != (want.Maps[c] == nil) {
			t.Fatal("restored maps presence differs")
		}
		if after.Maps[c] != nil {
			for i := range after.Maps[c].Cells {
				if after.Maps[c].Cells[i] != want.Maps[c].Cells[i] {
					t.Fatal("restored maps differ")
				}
			}
		}
	}
	// Architecture mismatch is rejected before mutating anything.
	other := NewUntrained(IC, p, TrainedConfig{Frames: 60, Epochs: 1, Img: 32, Channels: 16, Seed: 3}, nil)
	if err := other.LoadWeights(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
}

func TestTrainedODFilterLearnsLocalization(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training skipped in -short mode")
	}
	p := video.Jackson()
	b := TrainFilter(OD, p, TrainedConfig{Frames: 250, Epochs: 4, Img: 32, Channels: 16, Seed: 2}, nil)
	if b.Technique() != OD {
		t.Fatal("wrong technique")
	}
	s := video.NewStream(p, 77)
	var loc metrics.PRF
	g := b.Grid()
	for i := 0; i < 100; i++ {
		f := s.Next()
		o := b.Evaluate(f)
		truth := grid.FromCenters(boxesOf(f, video.Car), f.Bounds, g)
		tp, fp, fn := grid.Match(o.Map(video.Car, g), truth, 1)
		loc.Add(tp, fp, fn)
	}
	// The Eq. 3-trained branch must localise cars far better than chance
	// on the 8x8 grid.
	if loc.F1() < 0.5 {
		t.Fatalf("trained OD localisation f1 = %v, want >= 0.5", loc.F1())
	}
}

func TestTrainedFilterLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training skipped in -short mode")
	}
	clk := simclock.New()
	p := video.Jackson()
	b := TrainFilter(IC, p, TrainedConfig{Frames: 250, Epochs: 3, Img: 32, Channels: 16, Seed: 1}, clk)
	if b.Technique() != IC || b.Grid() != 8 {
		t.Fatalf("trained backend metadata wrong: %v %d", b.Technique(), b.Grid())
	}
	s := video.NewStream(p, 99)
	var ca metrics.CountAccuracy
	for i := 0; i < 120; i++ {
		f := s.Next()
		o := b.Evaluate(f)
		ca.Observe(f.CountClass(video.Car), o.Counts[video.Car])
	}
	// The tiny net should beat a count-0 baseline decisively within ±1.
	if ca.Accuracy(1) < 0.6 {
		t.Fatalf("trained IC filter ±1 car-count accuracy = %v, want >= 0.6", ca.Accuracy(1))
	}
	if clk.Calls("ic-filter") != 120 {
		t.Fatalf("clock calls = %d", clk.Calls("ic-filter"))
	}
}
