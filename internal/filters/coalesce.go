package filters

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"vmq/internal/nn"
)

// Cross-feed coalescing identity
//
// A server hosting many camera feeds often serves them all with the same
// trained network (one model, N cameras). Each feed still owns its memo
// and its micro-batches, but the underlying GEMMs can be merged across
// feeds — if and only if it is safe to push feed A's frames through feed
// B's backend instance. Coalescable makes that contract explicit: the key
// fingerprints everything the evaluation depends on (architecture, trained
// weights, rasterisation parameters, cost accounting), so equal keys mean
// interchangeable backends.

// Coalescable is implemented by batch backends whose evaluations may be
// merged with those of other instances sharing the same key. Implementors
// promise that two backends with equal keys produce bit-identical Outputs
// for any frame and charge costs to the same clock, so a cross-feed
// scheduler may evaluate either instance's frames through the other.
type Coalescable interface {
	BatchBackend
	// CoalesceKey returns the backend's non-empty architecture/weights
	// identity. It is computed once and cached: backends must not be
	// retrained or have weights reloaded while being served.
	CoalesceKey() string
}

// CoalesceKeyOf returns b's coalescing identity, or "" when b does not
// declare one (then it must never be coalesced).
func CoalesceKeyOf(b Backend) string {
	if c, ok := b.(Coalescable); ok {
		return c.CoalesceKey()
	}
	return ""
}

// hashParams folds every parameter tensor (shape and bit-exact values)
// into h.
func hashParams(h io.Writer, params []*nn.Param) {
	var buf [4]byte
	for _, p := range params {
		for _, d := range p.Value.Shape {
			binary.LittleEndian.PutUint32(buf[:], uint32(d))
			h.Write(buf[:])
		}
		for _, v := range p.Value.Data {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			h.Write(buf[:])
		}
	}
}

// CoalesceKey implements Coalescable: the identity covers the filter
// family, rasterisation geometry and noise seed, thresholding, the class
// universe, the clock costs are charged to, and an FNV-1a fingerprint of
// every trained weight. Separately trained networks that happen to share
// an architecture hash apart; the same saved model loaded into two
// instances hashes together.
func (t *Trained) CoalesceKey() string {
	t.keyOnce.Do(func() {
		h := fnv.New64a()
		fmt.Fprintf(h, "trained|%v|img=%d|thr=%g|noise=%d|classes=%v|clock=%p|",
			t.Tech, t.Img, t.Threshold, t.NoiseSeed, t.classes, t.Clock)
		hashParams(h, t.Net.Params())
		t.key = fmt.Sprintf("%v-cnn-%016x", t.Tech, h.Sum64())
	})
	return t.key
}

// CoalesceKey implements Coalescable for the count-only branch.
func (t *TrainedCOF) CoalesceKey() string {
	t.keyOnce.Do(func() {
		h := fnv.New64a()
		fmt.Fprintf(h, "cof|img=%d|noise=%d|clock=%p|", t.Img, t.NoiseSeed, t.Clock)
		hashParams(h, t.Net.Params())
		t.key = fmt.Sprintf("OD-cof-%016x", h.Sum64())
	})
	return t.key
}
