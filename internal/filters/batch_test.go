package filters

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"vmq/internal/simclock"
	"vmq/internal/video"
)

// EvaluateBatch through the calibrated backend's native batch path must
// match per-frame Evaluate output exactly and charge the same total cost,
// with a single clock transaction for the whole batch.
func TestCalibratedEvaluateBatchMatchesEvaluate(t *testing.T) {
	p := video.Detrac()
	frames := video.NewStream(p, 6).Take(64)

	single := NewODFilter(p, 6, simclock.New())
	batchClk := simclock.New()
	batched := NewODFilter(p, 6, batchClk)

	outs := EvaluateBatch(batched, frames)
	if len(outs) != len(frames) {
		t.Fatalf("batch outputs = %d, want %d", len(outs), len(frames))
	}
	for i, f := range frames {
		want := single.Evaluate(f)
		if !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("frame %d: batch output diverged from Evaluate", i)
		}
	}
	if got := batchClk.Calls("od-filter"); got != int64(len(frames)) {
		t.Fatalf("batch clock charges = %d, want %d", got, len(frames))
	}
	if batchClk.Elapsed() != time.Duration(len(frames))*OD.Cost().PerCall {
		t.Fatalf("batch clock elapsed = %v", batchClk.Elapsed())
	}
}

// A backend without a native batch path gets the per-frame fallback.
type plainBackend struct{ inner Backend }

func (p *plainBackend) Technique() Technique            { return p.inner.Technique() }
func (p *plainBackend) Grid() int                       { return p.inner.Grid() }
func (p *plainBackend) Evaluate(f *video.Frame) *Output { return p.inner.Evaluate(f) }

func TestEvaluateBatchFallback(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 7).Take(16)
	clk := simclock.New()
	b := &plainBackend{inner: NewICFilter(p, 7, clk)}
	outs := EvaluateBatch(b, frames)
	ref := NewICFilter(p, 7, nil)
	for i, f := range frames {
		if !reflect.DeepEqual(outs[i], ref.Evaluate(f)) {
			t.Fatalf("fallback output %d diverged", i)
		}
	}
	if got := clk.Calls("ic-filter"); got != int64(len(frames)) {
		t.Fatalf("fallback charges = %d, want %d", got, len(frames))
	}
	// Empty batches are a no-op either way.
	if got := EvaluateBatch(b, nil); len(got) != 0 {
		t.Fatalf("empty batch produced %d outputs", len(got))
	}
	if got := EvaluateBatch(NewICFilter(p, 7, nil), nil); len(got) != 0 {
		t.Fatalf("empty native batch produced %d outputs", len(got))
	}
}

// EvaluateBatchInto must append into the caller's slice without
// reallocating when capacity suffices — the aliasing rule the pipelined
// executor's per-worker scratch depends on.
func TestEvaluateBatchIntoReusesDst(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 9).Take(8)
	scratch := make([]*Output, 0, 16)
	for _, b := range []Backend{
		NewICFilter(p, 9, nil),                       // native batch path
		&plainBackend{inner: NewICFilter(p, 9, nil)}, // per-frame fallback
		NewShared(NewICFilter(p, 9, nil), 0),         // memoised batch path
	} {
		got := EvaluateBatchInto(b, frames, scratch[:0])
		if len(got) != len(frames) {
			t.Fatalf("%T: got %d outputs", b, len(got))
		}
		if &got[0] != &scratch[:1][0] {
			t.Errorf("%T: EvaluateBatchInto reallocated despite sufficient capacity", b)
		}
	}
}

// The trained backends' native batch path must match per-frame evaluation
// exactly — batching must not change a single verdict. NewUntrained skips
// the slow training loop; random weights exercise the same kernels.
func TestTrainedEvaluateBatchMatchesEvaluate(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 11).Take(40)
	cfg := TrainedConfig{Img: 32, Channels: 8, Seed: 11}
	for _, tech := range []Technique{IC, OD} {
		batched := NewUntrained(tech, p, cfg, simclock.New())
		single := NewUntrained(tech, p, cfg, simclock.New())
		outs := EvaluateBatch(batched, frames)
		for i, f := range frames {
			if !reflect.DeepEqual(outs[i], single.Evaluate(f)) {
				t.Fatalf("%v frame %d: batched output diverged from per-frame", tech, i)
			}
		}
		if got := batched.Clock.Calls(tech.Cost().Name); got != int64(len(frames)) {
			t.Fatalf("%v batch clock charges = %d, want %d", tech, got, len(frames))
		}
	}
	// Chunk-size independence: evaluating in uneven chunks must yield the
	// same outputs as one big batch.
	whole := NewUntrained(OD, p, cfg, nil)
	chunked := NewUntrained(OD, p, cfg, nil)
	want := EvaluateBatch(whole, frames)
	var got []*Output
	for i := 0; i < len(frames); {
		n := 1 + (i*7)%5
		if i+n > len(frames) {
			n = len(frames) - i
		}
		got = chunked.EvaluateBatch(frames[i:i+n], got)
		i += n
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("chunked evaluation diverged from one whole batch")
	}
}

// Shared.EvaluateBatch fills the memo with one inner batch call, serves
// cached frames as hits, and returns outputs identical to Evaluate's.
func TestSharedEvaluateBatch(t *testing.T) {
	p := video.Jackson()
	inner := &countingBackend{Backend: NewODFilter(p, 13, nil)}
	shared := NewShared(inner, 0)
	frames := video.NewStream(p, 13).Take(32)

	// Warm the first half per-frame, then batch over everything.
	for _, f := range frames[:16] {
		shared.Evaluate(f)
	}
	outs := EvaluateBatch(shared, frames)
	if got := inner.Calls(); got != len(frames) {
		t.Fatalf("inner evaluated %d times, want %d", got, len(frames))
	}
	hits, misses := shared.Stats()
	if misses != int64(len(frames)) || hits != 16 {
		t.Fatalf("stats = %d hits / %d misses", hits, misses)
	}
	reference := NewODFilter(p, 13, nil)
	for i, f := range frames {
		if !reflect.DeepEqual(outs[i], reference.Evaluate(f)) {
			t.Fatalf("frame %d: batch output diverges from standalone", i)
		}
	}
}

// Concurrent overlapping batches (and per-frame lookups racing them) each
// evaluate a frame at most once in total; run under -race this also
// checks the claim/fill protocol.
func TestSharedEvaluateBatchConcurrent(t *testing.T) {
	p := video.Jackson()
	inner := &countingBackend{Backend: NewODFilter(p, 14, nil)}
	shared := NewShared(inner, 0)
	frames := video.NewStream(p, 14).Take(96)
	var wg sync.WaitGroup
	for q := 0; q < 6; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			if q%2 == 0 {
				var outs []*Output
				for i := 0; i+8 <= len(frames); i += 8 {
					outs = shared.EvaluateBatch(frames[i:i+8], outs[:0])
				}
			} else {
				for _, f := range frames {
					shared.Evaluate(f)
				}
			}
		}(q)
	}
	wg.Wait()
	if got := inner.Calls(); got != len(frames) {
		t.Fatalf("inner evaluated %d times for %d frames", got, len(frames))
	}
}

func TestConcurrentSafeDeclaration(t *testing.T) {
	p := video.Jackson()
	if !ConcurrentSafe(NewODFilter(p, 1, nil)) {
		t.Fatal("calibrated backend should be concurrency-safe")
	}
	if ConcurrentSafe(&plainBackend{inner: NewODFilter(p, 1, nil)}) {
		t.Fatal("undeclared backend must default to single-threaded")
	}
}
