package filters

import (
	"reflect"
	"testing"
	"time"

	"vmq/internal/simclock"
	"vmq/internal/video"
)

// EvaluateBatch through the calibrated backend's native batch path must
// match per-frame Evaluate output exactly and charge the same total cost,
// with a single clock transaction for the whole batch.
func TestCalibratedEvaluateBatchMatchesEvaluate(t *testing.T) {
	p := video.Detrac()
	frames := video.NewStream(p, 6).Take(64)

	single := NewODFilter(p, 6, simclock.New())
	batchClk := simclock.New()
	batched := NewODFilter(p, 6, batchClk)

	outs := EvaluateBatch(batched, frames)
	if len(outs) != len(frames) {
		t.Fatalf("batch outputs = %d, want %d", len(outs), len(frames))
	}
	for i, f := range frames {
		want := single.Evaluate(f)
		if !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("frame %d: batch output diverged from Evaluate", i)
		}
	}
	if got := batchClk.Calls("od-filter"); got != int64(len(frames)) {
		t.Fatalf("batch clock charges = %d, want %d", got, len(frames))
	}
	if batchClk.Elapsed() != time.Duration(len(frames))*OD.Cost().PerCall {
		t.Fatalf("batch clock elapsed = %v", batchClk.Elapsed())
	}
}

// A backend without a native batch path gets the per-frame fallback.
type plainBackend struct{ inner Backend }

func (p *plainBackend) Technique() Technique            { return p.inner.Technique() }
func (p *plainBackend) Grid() int                       { return p.inner.Grid() }
func (p *plainBackend) Evaluate(f *video.Frame) *Output { return p.inner.Evaluate(f) }

func TestEvaluateBatchFallback(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 7).Take(16)
	clk := simclock.New()
	b := &plainBackend{inner: NewICFilter(p, 7, clk)}
	outs := EvaluateBatch(b, frames)
	ref := NewICFilter(p, 7, nil)
	for i, f := range frames {
		if !reflect.DeepEqual(outs[i], ref.Evaluate(f)) {
			t.Fatalf("fallback output %d diverged", i)
		}
	}
	if got := clk.Calls("ic-filter"); got != int64(len(frames)) {
		t.Fatalf("fallback charges = %d, want %d", got, len(frames))
	}
	// Empty batches are a no-op either way.
	if got := EvaluateBatch(b, nil); len(got) != 0 {
		t.Fatalf("empty batch produced %d outputs", len(got))
	}
	if got := EvaluateBatch(NewICFilter(p, 7, nil), nil); len(got) != 0 {
		t.Fatalf("empty native batch produced %d outputs", len(got))
	}
}

func TestConcurrentSafeDeclaration(t *testing.T) {
	p := video.Jackson()
	if !ConcurrentSafe(NewODFilter(p, 1, nil)) {
		t.Fatal("calibrated backend should be concurrency-safe")
	}
	if ConcurrentSafe(&plainBackend{inner: NewODFilter(p, 1, nil)}) {
		t.Fatal("undeclared backend must default to single-threaded")
	}
}
