package detect

import (
	"testing"
	"time"

	"vmq/internal/geom"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

func denseFrame() *video.Frame {
	// Three cars, two of them heavily overlapping, plus a person.
	return &video.Frame{
		CameraID: "t",
		Bounds:   geom.Rect{X0: 0, Y0: 0, X1: 448, Y1: 448},
		Objects: []video.Object{
			{TrackID: 1, Class: video.Car, Color: video.Red, Box: geom.Rect{X0: 10, Y0: 10, X1: 110, Y1: 60}},
			{TrackID: 2, Class: video.Car, Color: video.Blue, Box: geom.Rect{X0: 15, Y0: 12, X1: 112, Y1: 62}},
			{TrackID: 3, Class: video.Car, Color: video.White, Box: geom.Rect{X0: 300, Y0: 300, X1: 380, Y1: 350}},
			{TrackID: 4, Class: video.Person, Color: video.Green, Box: geom.Rect{X0: 200, Y0: 100, X1: 230, Y1: 180}},
		},
	}
}

func TestOracleExactAndCharges(t *testing.T) {
	clk := simclock.New()
	o := NewOracle(clk)
	f := denseFrame()
	dets := o.Detect(f)
	if len(dets) != len(f.Objects) {
		t.Fatalf("Oracle returned %d detections, want %d", len(dets), len(f.Objects))
	}
	for i, d := range dets {
		if d.Box != f.Objects[i].Box || d.Class != f.Objects[i].Class || d.Score != 1 {
			t.Fatalf("detection %d differs from ground truth", i)
		}
	}
	if clk.Elapsed() != 200*time.Millisecond {
		t.Fatalf("Oracle charged %v, want 200ms", clk.Elapsed())
	}
	if o.Cost().Name != "mask-rcnn" {
		t.Fatal("Oracle cost mislabelled")
	}
}

func TestOracleNilClock(t *testing.T) {
	o := NewOracle(nil)
	if got := o.Detect(denseFrame()); len(got) != 4 {
		t.Fatal("nil-clock Oracle failed")
	}
}

func TestSimYOLOMergesOverlaps(t *testing.T) {
	clk := simclock.New()
	y := NewSimYOLO(clk, 1)
	y.MissProb = 0 // isolate merging behaviour
	f := denseFrame()
	dets := y.Detect(f)
	// Cars 1 and 2 overlap far above 0.45 IoU: they must merge.
	if n := CountClass(dets, video.Car); n != 2 {
		t.Fatalf("SimYOLO car count = %d, want 2 (one merged pair)", n)
	}
	if n := CountClass(dets, video.Person); n != 1 {
		t.Fatalf("SimYOLO person count = %d, want 1", n)
	}
	if clk.Calls("yolo-full") != 1 {
		t.Fatal("SimYOLO did not charge clock")
	}
}

func TestSimYOLOLocalizationStaysClose(t *testing.T) {
	y := NewSimYOLO(nil, 2)
	y.MissProb = 0
	y.MergeIoU = 1.1 // disable merging
	f := denseFrame()
	dets := y.Detect(f)
	if len(dets) != 4 {
		t.Fatalf("got %d detections", len(dets))
	}
	for i, d := range dets {
		if geom.IoU(d.Box, f.Objects[i].Box) < 0.7 {
			t.Fatalf("detection %d drifted: IoU %v", i, geom.IoU(d.Box, f.Objects[i].Box))
		}
	}
}

func TestSimYOLOMisses(t *testing.T) {
	y := NewSimYOLO(nil, 3)
	y.MissProb = 1
	if dets := y.Detect(denseFrame()); len(dets) != 0 {
		t.Fatalf("MissProb=1 still detected %d", len(dets))
	}
}

func TestSimYOLOUndercountsDenseScenes(t *testing.T) {
	// Over a Detrac-like stream the mean SimYOLO count must fall below the
	// true mean — the behaviour the paper reports for full YOLOv2.
	s := video.NewStream(video.Detrac(), 5)
	y := NewSimYOLO(nil, 4)
	var trueSum, yoloSum float64
	const n = 300
	for i := 0; i < n; i++ {
		f := s.Next()
		trueSum += float64(f.Count())
		yoloSum += float64(len(y.Detect(f)))
	}
	if yoloSum >= trueSum {
		t.Fatalf("SimYOLO did not undercount: %v vs true %v", yoloSum/n, trueSum/n)
	}
}

func TestNoisyDetector(t *testing.T) {
	f := denseFrame()
	// MissProb drops detections on average.
	n := NewNoisy(NewOracle(nil), 0.5, 0, 0, 1)
	total := 0
	for i := 0; i < 200; i++ {
		total += len(n.Detect(f))
	}
	mean := float64(total) / 200
	if mean < 1.2 || mean > 2.8 {
		t.Fatalf("MissProb=0.5 kept %.2f of 4 detections on average", mean)
	}
	// Jitter perturbs boxes but keeps them canonical.
	j := NewNoisy(NewOracle(nil), 0, 3, 0, 2)
	moved := false
	for _, d := range j.Detect(f) {
		if d.Box.X0 > d.Box.X1 || d.Box.Y0 > d.Box.Y1 {
			t.Fatal("jittered box not canonical")
		}
		if d.Box != f.Objects[0].Box {
			moved = true
		}
	}
	if !moved {
		t.Fatal("jitter had no effect")
	}
	// Colour confusion changes colours eventually.
	c := NewNoisy(NewOracle(nil), 0, 0, 1, 3)
	changed := false
	for i := 0; i < 20 && !changed; i++ {
		for k, d := range c.Detect(f) {
			if d.Color != f.Objects[k].Color {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("colour confusion had no effect")
	}
	// Cost passes through.
	if c.Cost() != NewOracle(nil).Cost() {
		t.Fatal("Noisy changed the cost")
	}
}

func TestHelpers(t *testing.T) {
	o := NewOracle(nil)
	dets := o.Detect(denseFrame())
	if len(Boxes(dets, video.Car)) != 3 {
		t.Fatal("Boxes(Car) wrong")
	}
	if len(Boxes(dets, -1)) != 4 {
		t.Fatal("Boxes(all) wrong")
	}
	if CountClassColor(dets, video.Car, video.Red) != 1 {
		t.Fatal("CountClassColor(Car,Red) wrong")
	}
	if CountClassColor(dets, video.Car, video.AnyColor) != 3 {
		t.Fatal("CountClassColor(Car,Any) wrong")
	}
}
