package detect

import (
	"reflect"
	"sync"
	"testing"

	"vmq/internal/simclock"
	"vmq/internal/video"
)

func TestOrderInsensitiveDeclarations(t *testing.T) {
	if !IsOrderInsensitive(NewOracle(nil)) {
		t.Fatal("oracle must declare order-insensitive detections")
	}
	if IsOrderInsensitive(NewSimYOLO(nil, 1)) {
		t.Fatal("SimYOLO's RNG is call-order sensitive; it must not qualify")
	}
	if NewMemo(NewSimYOLO(nil, 1), 0) != nil {
		t.Fatal("NewMemo must refuse an order-sensitive detector")
	}
}

// The memo serves identical detections to every query while running the
// inner detector (and charging its clock) once per frame.
func TestMemoSharesDetections(t *testing.T) {
	p := video.Detrac()
	frames := video.NewStream(p, 21).Take(48)
	clk := simclock.New()
	memo := NewMemo(NewOracle(clk), 0)
	if memo == nil {
		t.Fatal("memo over the oracle must construct")
	}
	if memo.Cost() != simclock.CostMaskRCNN {
		t.Fatalf("cost not forwarded: %+v", memo.Cost())
	}

	const queries = 5
	var wg sync.WaitGroup
	outs := make([][][]Detection, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for _, f := range frames {
				outs[q] = append(outs[q], memo.Detect(f))
			}
		}(q)
	}
	wg.Wait()

	if got := clk.Calls("mask-rcnn"); got != int64(len(frames)) {
		t.Fatalf("inner detector ran %d times for %d frames x %d queries", got, len(frames), queries)
	}
	hits, misses := memo.Stats()
	if misses != int64(len(frames)) || hits != int64((queries-1)*len(frames)) {
		t.Fatalf("stats = %d hits / %d misses", hits, misses)
	}
	reference := NewOracle(nil)
	for q := 0; q < queries; q++ {
		for i, f := range frames {
			if !reflect.DeepEqual(outs[q][i], reference.Detect(f)) {
				t.Fatalf("query %d frame %d: memoised detections diverge from a fresh oracle", q, i)
			}
		}
	}
}

// Eviction bounds the cache without breaking correctness.
func TestMemoEviction(t *testing.T) {
	p := video.Jackson()
	frames := video.NewStream(p, 22).Take(40)
	clk := simclock.New()
	memo := NewMemo(NewOracle(clk), 8)
	for _, f := range frames {
		memo.Detect(f)
	}
	reference := NewOracle(nil)
	for _, f := range frames {
		if !reflect.DeepEqual(memo.Detect(f), reference.Detect(f)) {
			t.Fatalf("frame %d: post-eviction detections diverge", f.Index)
		}
	}
	if got := clk.Calls("mask-rcnn"); got != int64(2*len(frames)) {
		t.Fatalf("inner ran %d times, want %d (full re-evaluation after thrash)", got, 2*len(frames))
	}
}

// A detection memo serving an endless feed must hold a bounded number of
// entries: frames past the eviction watermark are released and only cost
// a re-evaluation if a straggler query revisits them.
func TestMemoBoundedUnderLongFeed(t *testing.T) {
	p := video.Detrac()
	const capacity, total = 128, 4096
	memo := NewMemo(NewOracle(nil), capacity)
	src := video.NewStream(p, 31)
	for i := 0; i < total; i++ {
		memo.Detect(src.Next())
		if got := memo.Entries(); got > capacity {
			t.Fatalf("after %d frames the memo holds %d entries, cap %d", i+1, got, capacity)
		}
	}
	if got := memo.Entries(); got != capacity {
		t.Fatalf("steady state holds %d entries, want the full capacity %d", got, capacity)
	}
	if hits, misses := memo.Stats(); hits != 0 || misses != total {
		t.Fatalf("distinct frames: hits=%d misses=%d, want 0/%d", hits, misses, total)
	}
}
