package detect

import (
	"sync"
	"sync/atomic"

	"vmq/internal/simclock"
	"vmq/internal/video"
)

// OrderInsensitive is implemented by detectors whose output depends only
// on the frame, never on call order or call count — the property that
// makes their results shareable across queries the way filter outputs are.
// The Oracle qualifies (it copies ground truth); SimYOLO does not (its
// jitter RNG advances per call).
type OrderInsensitive interface {
	Detector
	// OrderInsensitiveDetections reports whether Detect(f) is a pure
	// function of f.
	OrderInsensitiveDetections() bool
}

// IsOrderInsensitive reports whether d declares per-frame deterministic,
// order-independent output. Detectors that do not implement
// OrderInsensitive are conservatively treated as order-sensitive.
func IsOrderInsensitive(d Detector) bool {
	oi, ok := d.(OrderInsensitive)
	return ok && oi.OrderInsensitiveDetections()
}

// Memo wraps an order-insensitive detector with a bounded per-frame
// detection cache, mirroring filters.Shared for the confirmation stage:
// queries sharing one oracle on a feed pay one Detect per frame — the
// first query to confirm a frame runs the detector (and its clock
// charge); every later query gets the cached detections. Entries are
// keyed by frame pointer (the fan-out tee delivers the same *Frame to
// every subscriber) and evicted FIFO beyond the capacity; eviction only
// costs a re-evaluation, never correctness.
//
// The cached []Detection slice is returned to every caller and must be
// treated as immutable. Wrapping an order-sensitive detector would change
// its outputs (each frame would see one RNG draw instead of one per
// query); NewMemo therefore refuses detectors that do not declare
// OrderInsensitive.
type Memo struct {
	inner    Detector
	capacity int

	mu      sync.Mutex
	entries map[*video.Frame]*memoEntry
	order   []*video.Frame

	hits   atomic.Int64
	misses atomic.Int64
}

// memoEntry latches one frame's detections: the creator fills dets and
// closes ready; other callers wait and share. A panicking inner
// detector poisons the entry (waiters re-panic with the same value
// instead of blocking forever) and the entry leaves the cache so a
// later confirmation retries rather than replaying the latched fault.
type memoEntry struct {
	ready  chan struct{}
	dets   []Detection
	poison any
}

// NewMemo wraps inner with a detection cache of the given capacity
// (frames; non-positive selects 4096). It returns nil if inner does not
// declare itself order-insensitive — callers fall back to per-query
// detectors exactly as before.
func NewMemo(inner Detector, capacity int) *Memo {
	if !IsOrderInsensitive(inner) {
		return nil
	}
	if capacity <= 0 {
		capacity = 4096
	}
	return &Memo{
		inner:    inner,
		capacity: capacity,
		entries:  make(map[*video.Frame]*memoEntry, capacity),
	}
}

// Inner returns the wrapped detector.
func (m *Memo) Inner() Detector { return m.inner }

// Stats reports cache hits (detections served without an inner Detect)
// and misses (true detector evaluations) so far.
func (m *Memo) Stats() (hits, misses int64) {
	return m.hits.Load(), m.misses.Load()
}

// Entries reports how many frames are currently memoised — bounded by the
// construction capacity, so a long-running feed's memo reaches steady
// state instead of retaining every frame it ever confirmed.
func (m *Memo) Entries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Detect implements Detector. The first caller for a frame runs the inner
// detector (charging its clock once); concurrent callers for the same
// frame block until it finishes and share the detections. Callers must
// not mutate the returned slice.
func (m *Memo) Detect(f *video.Frame) []Detection {
	m.mu.Lock()
	e, ok := m.entries[f]
	if !ok {
		e = &memoEntry{ready: make(chan struct{})}
		m.entries[f] = e
		m.order = append(m.order, f)
		if len(m.order) > m.capacity {
			oldest := m.order[0]
			m.order = m.order[1:]
			delete(m.entries, oldest)
		}
	}
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
		<-e.ready
		if e.poison != nil {
			panic(e.poison)
		}
		return e.dets
	}
	m.misses.Add(1)
	dets, pval := func() (d []Detection, p any) {
		defer func() {
			if r := recover(); r != nil {
				d, p = nil, r
			}
		}()
		return m.inner.Detect(f), nil
	}()
	if pval != nil {
		e.poison = pval
		close(e.ready)
		m.mu.Lock()
		if cur, exists := m.entries[f]; exists && cur == e {
			delete(m.entries, f)
		}
		m.mu.Unlock()
		panic(pval)
	}
	e.dets = dets
	close(e.ready)
	return e.dets
}

// Cost implements Detector: the virtual cost model is unchanged — each
// query's pipeline still accounts the full per-frame charge; the memo
// saves real compute, not simulated time.
func (m *Memo) Cost() simclock.Cost { return m.inner.Cost() }

// OrderInsensitiveDetections implements OrderInsensitive: a memo over a
// pure detector is itself pure.
func (m *Memo) OrderInsensitiveDetections() bool { return true }
