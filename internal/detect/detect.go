// Package detect provides the object detectors the query engine confirms
// frames with. The paper uses Mask R-CNN both as the ground-truth annotator
// and as the final per-frame evaluator (200 ms/frame) and full YOLOv2 as a
// faster but count-poor comparison point (15 ms/frame). Neither network is
// runnable offline in Go, so:
//
//   - Oracle plays the Mask R-CNN role: it returns the simulator's ground
//     truth verbatim (exactly how the paper treats Mask R-CNN output) and
//     charges 200 ms of virtual time per frame to a simclock.Clock.
//   - SimYOLO plays the full-YOLOv2 role: faithful localisation with small
//     box jitter, but systematic undercounting from NMS-style merging of
//     overlapping boxes plus occasional misses — matching the paper's
//     observation that the full YOLO pass "provides good localization
//     accuracy … but results in poor counting accuracy".
package detect

import (
	"math/rand/v2"

	"vmq/internal/geom"
	"vmq/internal/simclock"
	"vmq/internal/video"
)

// Detection is one detected object instance.
type Detection struct {
	Class   video.Class
	Color   video.Color
	Box     geom.Rect
	Score   float64
	TrackID int
}

// Detector evaluates a frame and returns the objects it finds.
type Detector interface {
	// Detect analyses one frame, charging its per-frame cost to the
	// detector's clock.
	Detect(f *video.Frame) []Detection
	// Cost returns the per-frame virtual cost.
	Cost() simclock.Cost
}

// Oracle is the Mask R-CNN stand-in: perfect detections at 200 ms/frame of
// virtual time. A nil Clock disables accounting.
type Oracle struct {
	Clock *simclock.Clock
}

// NewOracle returns an Oracle charging clock.
func NewOracle(clock *simclock.Clock) *Oracle { return &Oracle{Clock: clock} }

// Detect implements Detector.
func (o *Oracle) Detect(f *video.Frame) []Detection {
	o.Clock.Charge(simclock.CostMaskRCNN, 1)
	out := make([]Detection, len(f.Objects))
	for i, obj := range f.Objects {
		out[i] = Detection{
			Class:   obj.Class,
			Color:   obj.Color,
			Box:     obj.Box,
			Score:   1,
			TrackID: obj.TrackID,
		}
	}
	return out
}

// Cost implements Detector.
func (o *Oracle) Cost() simclock.Cost { return simclock.CostMaskRCNN }

// OrderInsensitiveDetections implements OrderInsensitive: the oracle
// copies ground truth, so its detections are a pure function of the frame
// and may be shared across queries via a Memo.
func (o *Oracle) OrderInsensitiveDetections() bool { return true }

// SimYOLO simulates a full YOLOv2 pass: boxes are jittered by a few pixels
// (localisation remains strong), heavily-overlapping same-class detections
// are merged (undercounting in dense frames) and a small fraction of
// objects is missed outright.
type SimYOLO struct {
	Clock *simclock.Clock
	// MergeIoU is the overlap above which two same-class boxes collapse
	// into one detection (default 0.45).
	MergeIoU float64
	// MissProb is the per-object probability of an outright miss
	// (default 0.05).
	MissProb float64
	// JitterPx is the box-corner jitter standard deviation in pixels
	// (default 2).
	JitterPx float64

	rng *rand.Rand
}

// NewSimYOLO returns a SimYOLO with the defaults above, seeded
// deterministically.
func NewSimYOLO(clock *simclock.Clock, seed uint64) *SimYOLO {
	return &SimYOLO{
		Clock:    clock,
		MergeIoU: 0.45,
		MissProb: 0.05,
		JitterPx: 2,
		rng:      rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb)),
	}
}

// Detect implements Detector.
func (y *SimYOLO) Detect(f *video.Frame) []Detection {
	y.Clock.Charge(simclock.CostYOLOFull, 1)
	var dets []Detection
	for _, obj := range f.Objects {
		if y.rng.Float64() < y.MissProb {
			continue
		}
		box := obj.Box
		box.X0 += y.rng.NormFloat64() * y.JitterPx
		box.Y0 += y.rng.NormFloat64() * y.JitterPx
		box.X1 += y.rng.NormFloat64() * y.JitterPx
		box.Y1 += y.rng.NormFloat64() * y.JitterPx
		box = box.Canon()
		dets = append(dets, Detection{
			Class:   obj.Class,
			Color:   obj.Color,
			Box:     box,
			Score:   0.5 + 0.5*y.rng.Float64(),
			TrackID: obj.TrackID,
		})
	}
	return mergeOverlaps(dets, y.MergeIoU)
}

// Cost implements Detector.
func (y *SimYOLO) Cost() simclock.Cost { return simclock.CostYOLOFull }

// mergeOverlaps is the NMS-style merging that makes SimYOLO undercount
// dense scenes: any same-class pair with IoU above threshold keeps only
// the higher-scoring box.
func mergeOverlaps(dets []Detection, iou float64) []Detection {
	kept := make([]Detection, 0, len(dets))
	suppressed := make([]bool, len(dets))
	for i := range dets {
		if suppressed[i] {
			continue
		}
		for j := i + 1; j < len(dets); j++ {
			if suppressed[j] || dets[i].Class != dets[j].Class {
				continue
			}
			if geom.IoU(dets[i].Box, dets[j].Box) >= iou {
				if dets[j].Score > dets[i].Score {
					dets[i], dets[j] = dets[j], dets[i]
				}
				suppressed[j] = true
			}
		}
		kept = append(kept, dets[i])
	}
	return kept
}

// Noisy wraps a detector with an error model for failure-injection
// studies: per-detection miss probability, box jitter, and colour
// confusion. The paper treats Mask R-CNN as exact; Noisy quantifies how
// the query results degrade when the confirmation detector is not.
type Noisy struct {
	Inner Detector
	// MissProb drops each detection independently.
	MissProb float64
	// JitterPx adds Gaussian noise to each box corner.
	JitterPx float64
	// ColorConfusion replaces the detected colour with a random one.
	ColorConfusion float64

	rng *rand.Rand
}

// NewNoisy wraps inner with the given error rates, seeded
// deterministically.
func NewNoisy(inner Detector, missProb, jitterPx, colorConfusion float64, seed uint64) *Noisy {
	return &Noisy{
		Inner:          inner,
		MissProb:       missProb,
		JitterPx:       jitterPx,
		ColorConfusion: colorConfusion,
		rng:            rand.New(rand.NewPCG(seed, 0x853c49e6748fea9b)),
	}
}

// Detect implements Detector.
func (n *Noisy) Detect(f *video.Frame) []Detection {
	dets := n.Inner.Detect(f)
	out := dets[:0]
	for _, d := range dets {
		if n.rng.Float64() < n.MissProb {
			continue
		}
		if n.JitterPx > 0 {
			d.Box.X0 += n.rng.NormFloat64() * n.JitterPx
			d.Box.Y0 += n.rng.NormFloat64() * n.JitterPx
			d.Box.X1 += n.rng.NormFloat64() * n.JitterPx
			d.Box.Y1 += n.rng.NormFloat64() * n.JitterPx
			d.Box = d.Box.Canon()
		}
		if n.ColorConfusion > 0 && n.rng.Float64() < n.ColorConfusion {
			d.Color = video.Color(1 + n.rng.IntN(video.NumColors-1))
		}
		out = append(out, d)
	}
	return out
}

// Cost implements Detector.
func (n *Noisy) Cost() simclock.Cost { return n.Inner.Cost() }

// Boxes extracts the bounding boxes of detections of class c (every class
// if c is negative).
func Boxes(dets []Detection, c video.Class) []geom.Rect {
	var out []geom.Rect
	for _, d := range dets {
		if c < 0 || d.Class == c {
			out = append(out, d.Box)
		}
	}
	return out
}

// CountClass returns the number of detections of class c.
func CountClass(dets []Detection, c video.Class) int {
	n := 0
	for _, d := range dets {
		if d.Class == c {
			n++
		}
	}
	return n
}

// CountClassColor returns the number of detections of class c with colour
// col (AnyColor matches everything).
func CountClassColor(dets []Detection, c video.Class, col video.Color) int {
	n := 0
	for _, d := range dets {
		if d.Class == c && (col == video.AnyColor || d.Color == col) {
			n++
		}
	}
	return n
}
