package rlog

import (
	"path/filepath"
	"testing"

	"vmq/internal/fault"
)

// TestWriteThroughSpillsEveryEvent pins the crash-safety invariant of
// write-through mode: an event observable in the ring is already on
// disk, so the spill holds the full prefix — ring-resident tail
// included — not just what eviction pushed out.
func TestWriteThroughSpillsEveryEvent(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewFileSpill[int](filepath.Join(dir, "q"), SpillConfig{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	l := New[int](8, Block)
	l.SetSpill(sp)
	l.SetWriteThrough()
	const n = 20
	for i := 0; i < n; i++ {
		if !l.Append(i, true, nil) {
			t.Fatalf("append %d refused", i)
		}
	}
	if got := sp.Entries(); got != n {
		t.Fatalf("spill holds %d entries, want %d (write-through must not wait for eviction)", got, n)
	}
	last, ok := sp.LastRetained()
	if !ok || last != n-1 {
		t.Fatalf("LastRetained = %d, %v; want %d, true", last, ok, n-1)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Durable mode flushed per append: a reopen (the crash image) sees
	// every entry without any close-time flush having run.
	sp2, err := NewFileSpill[int](filepath.Join(dir, "q"), SpillConfig{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if got := sp2.Entries(); got != n {
		t.Fatalf("reopened spill holds %d entries, want %d", got, n)
	}
}

// TestResumeContinuesSequencing pins Resume: a recovered log hands out
// sequence numbers from the spill high-water mark, serves history from
// the spill, and seeds the ack floor.
func TestResumeContinuesSequencing(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewFileSpill[int](filepath.Join(dir, "q"), SpillConfig{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	l := New[int](8, Block)
	l.SetSpill(sp)
	l.SetWriteThrough()
	for i := 0; i < 10; i++ {
		l.Append(100+i, true, nil)
	}
	l.Ack(4)
	l.Close()
	sp.Close()

	sp2, err := NewFileSpill[int](filepath.Join(dir, "q"), SpillConfig{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	last, ok := sp2.LastRetained()
	if !ok {
		t.Fatal("recovered spill is empty")
	}
	l2 := New[int](8, Block)
	l2.SetSpill(sp2)
	l2.SetWriteThrough()
	l2.Resume(last+1, 4)
	if got := l2.NextSeq(); got != 10 {
		t.Fatalf("NextSeq after resume = %d, want 10", got)
	}
	if got := l2.AckedSeq(); got != 4 {
		t.Fatalf("AckedSeq after resume = %d, want 4", got)
	}
	l2.Append(200, true, nil) // seq 10

	// A consumer resuming one past its ack replays 5..9 from the spill,
	// then crosses into the live ring at 10 with no gap.
	r := l2.ReaderFrom(5)
	defer r.Detach()
	for want := 5; want <= 10; want++ {
		it, ok := r.Next(nil)
		if !ok {
			t.Fatalf("Next at %d: log drained early", want)
		}
		if it.Gap != nil {
			t.Fatalf("gap [%d,%d) on resumed read, want none", it.Gap.From, it.Gap.To)
		}
		if it.Seq != int64(want) {
			t.Fatalf("resumed read seq = %d, want %d", it.Seq, want)
		}
		wantV := 100 + want
		if want == 10 {
			wantV = 200
		}
		if it.Value != wantV {
			t.Fatalf("seq %d value = %d, want %d", it.Seq, it.Value, wantV)
		}
	}
}

// TestWriteThroughRetriesInjectedErrors arms the spill-append failpoint
// and checks a Block-policy write-through append rides out transient
// I/O errors without losing or reordering anything.
func TestWriteThroughRetriesInjectedErrors(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm("rlog.spill.append=error:every=3"); err != nil {
		t.Fatal(err)
	}
	sp, err := NewFileSpill[int](filepath.Join(t.TempDir(), "q"), SpillConfig{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	l := New[int](8, Block)
	l.SetSpill(sp)
	l.SetWriteThrough()
	const n = 30
	for i := 0; i < n; i++ {
		if !l.Append(i, true, nil) {
			t.Fatalf("append %d refused under injected errors", i)
		}
	}
	if got := sp.Entries(); got != n {
		t.Fatalf("spill holds %d entries, want %d", got, n)
	}
	if fault.Fired("rlog.spill.append") == 0 {
		t.Fatal("failpoint never fired — test exercised nothing")
	}
}

// TestShortWriteTornLineRecovery injects a short write and checks both
// the in-process self-healing (the next append terminates the partial
// line) and that a reopen skips the garbage without losing neighbours.
func TestShortWriteTornLineRecovery(t *testing.T) {
	defer fault.Reset()
	// This test appends directly to the spill (no retry loop above it),
	// so an env-armed chaos baseline on the same point would misfire into
	// its success assertions. Pin the point to exactly what the test arms.
	fault.Disarm("rlog.spill.append")
	dir := filepath.Join(t.TempDir(), "q")
	sp, err := NewFileSpill[int](dir, SpillConfig{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Append(0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("rlog.spill.append=short:times=1"); err != nil {
		t.Fatal(err)
	}
	if err := sp.Append(1, 1001); err == nil {
		t.Fatal("short-injected append reported success")
	}
	fault.Disarm("rlog.spill.append")
	// Retry the same sequence (what a write-through Block log does), then
	// continue.
	if err := sp.Append(1, 1001); err != nil {
		t.Fatalf("retry after torn write: %v", err)
	}
	if err := sp.Append(2, 1002); err != nil {
		t.Fatal(err)
	}
	for seq, want := range map[int64]int{0: 1000, 1: 1001, 2: 1002} {
		if v, ok := sp.Read(seq); !ok || v != want {
			t.Fatalf("in-process Read(%d) = %d, %v; want %d, true", seq, v, ok, want)
		}
	}
	sp.Close()

	sp2, err := NewFileSpill[int](dir, SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	for seq, want := range map[int64]int{0: 1000, 1: 1001, 2: 1002} {
		if v, ok := sp2.Read(seq); !ok || v != want {
			t.Fatalf("recovered Read(%d) = %d, %v; want %d, true (torn line swallowed a neighbour)", seq, v, ok, want)
		}
	}
}
