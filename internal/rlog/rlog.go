// Package rlog is the server's result-delivery subsystem: a bounded,
// monotonically-sequenced per-query result log. The continuous-query
// server appends every event a query produces into one Log; any number
// of consumers read it through per-consumer cursors, resume from a
// sequence number after a disconnect, and — when the ring has wrapped
// past their position — receive an explicit gap notice instead of a
// silently spliced stream.
//
// The log replaces the per-registration event channel the server used
// before: a channel couples production to exactly one consumer's pace
// and loses everything an absent consumer never read. The log decouples
// them with three per-query delivery policies:
//
//   - Block: lossless. The writer blocks rather than overwrite an event
//     no consumer has taken responsibility for — the channel contract,
//     but resumable: a consumer that disconnects and returns with
//     ?from=<seq> sees a gap-free stream.
//   - DropOldest: bounded lag. The writer never blocks; when the ring is
//     full of unconsumed events the oldest is overwritten (and counted
//     dropped). Slow consumers observe a gap and keep up from there.
//   - Sample: graceful degradation. As unconsumed backlog crosses half
//     the ring the writer decimates droppable events (keeping every 2nd,
//     then every 4th, then none) so a consumer under pressure still sees
//     a representative sample at bounded staleness.
//
// Storage is a power-of-two ring buffer indexed by sequence & mask, so
// retained sequence numbers are always the contiguous interval
// [firstRetained, nextSeq). An optional Spill receives entries as they
// are evicted from the ring; a reader positioned below firstRetained is
// served from the spill when one is attached, and reports a gap
// otherwise. With a spill attached, eviction prefers spilling over the
// policy action under every policy: a Block writer only blocks (and a
// DropOldest writer only drops) once the spill refuses the entry, so
// the resumable window is ring plus spill rather than ring alone.
//
// Consumers that need exactly-once delivery acknowledge: Ack(seq) on a
// cursor (or on the log, for out-of-band acknowledgements) records the
// last sequence the consumer durably processed, and the retention floor
// then follows the acknowledged position instead of the read position.
// An event sent into a dead connection no longer counts as consumed —
// the consumer that never acked it finds it again on resume.
//
// The Log is single-writer (sequence assignment needs no coordination)
// and multi-reader; all methods are safe for concurrent use.
package rlog

import (
	"errors"
	"math/bits"
	"sync"
	"time"
)

// Policy selects what the writer does when appending would overwrite an
// event no consumer has read yet.
type Policy string

// Delivery policies.
const (
	// Block makes the writer wait for the slowest consumer — lossless
	// delivery, at the cost of back-pressuring the producer.
	Block Policy = "block"
	// DropOldest overwrites the oldest unread event — bounded memory and
	// a never-blocked producer, at the cost of gaps for slow consumers.
	DropOldest Policy = "drop-oldest"
	// Sample decimates incoming droppable events once unread backlog
	// crosses half the ring (1-in-2, then 1-in-4 past three quarters,
	// then none when full) — consumers under pressure see a thinned but
	// current stream instead of an ever-staler complete one.
	Sample Policy = "sample-under-pressure"
)

// ParsePolicy resolves a policy name; the empty string selects Block
// (the lossless pre-log contract).
func ParsePolicy(s string) (Policy, bool) {
	switch Policy(s) {
	case "", Block:
		return Block, true
	case DropOldest:
		return DropOldest, true
	case Sample:
		return Sample, true
	}
	return "", false
}

// Gap reports a range of sequence numbers a reader could not be served:
// [From, To) was dropped or evicted before the reader got there.
type Gap struct {
	From int64
	To   int64
}

// Item is one delivery to a reader: either a logged value with its
// sequence number, or a gap notice (Gap non-nil, Value the zero value).
type Item[T any] struct {
	Seq   int64
	Value T
	Gap   *Gap
}

// Spill receives entries as they are evicted from the ring, extending
// the resumable window beyond the ring's capacity. Implementations must
// be safe for one appender and concurrent readers.
type Spill[T any] interface {
	// Append persists one evicted entry. Entries arrive in ascending
	// sequence order, at most once each — though not necessarily
	// contiguously: an entry the spill refused (ErrSpillFull) may be
	// followed by later ones, leaving a hole. A refusal may be retried
	// with the same sequence before any later one arrives.
	Append(seq int64, v T) error
	// Read returns the entry for seq, or false when it is not held
	// (never spilled, expired, or a read error).
	Read(seq int64) (T, bool)
	// NextRetained returns the lowest retained sequence >= seq (false
	// when none), so a reader below the spill window — or at a hole
	// inside it — gaps exactly to the next resumable position instead
	// of skipping the rest of the spill.
	NextRetained(seq int64) (int64, bool)
}

// Log is one query's bounded, sequenced result log.
type Log[T any] struct {
	mu       sync.Mutex
	ring     []T
	mask     int64
	policy   Policy
	spill    Spill[T]
	next     int64 // sequence of the next append
	first    int64 // oldest sequence still in the ring
	parked   int64 // retention floor while no reader is attached
	ackFloor int64 // one past the highest acked sequence; -1 = never acked
	readers  map[*Reader[T]]struct{}
	dropped  int64
	decim    int64 // sample-policy decimation counter
	closed   bool
	wt       bool   // write-through: spill at append time, not eviction
	wtOnDisk []bool // per-ring-slot: entry already spilled (write-through)

	// dataCh is closed and replaced to wake readers blocked on the tail;
	// spaceCh likewise to wake a writer blocked on the retention floor.
	// Channel-based broadcast keeps both waits selectable against
	// caller-supplied abort channels. The waiter counts gate the
	// close-and-replace: with nobody parked (the steady state for
	// DropOldest/Sample, and for readers keeping up) appends and cursor
	// advances skip the per-event channel allocation entirely. A count
	// is an upper bound — an aborted waiter leaves it stale until the
	// next broadcast resets it, costing at most one spurious wake.
	dataCh       chan struct{}
	spaceCh      chan struct{}
	dataWaiters  int
	spaceWaiters int
}

// New creates a log with the given policy retaining at least capacity
// entries (rounded up to a power of two; minimum 8, maximum 2^30 — the
// clamp keeps the rounding from overflowing when a caller forwards an
// unvalidated capacity). A nil-able spill may be attached with SetSpill
// before the first append.
func New[T any](capacity int, policy Policy) *Log[T] {
	if capacity < 8 {
		capacity = 8
	}
	if capacity > 1<<30 {
		capacity = 1 << 30
	}
	capacity = 1 << bits.Len(uint(capacity-1)) // next power of two
	if policy == "" {
		policy = Block
	}
	return &Log[T]{
		ring:     make([]T, capacity),
		mask:     int64(capacity - 1),
		policy:   policy,
		ackFloor: -1,
		readers:  make(map[*Reader[T]]struct{}),
		dataCh:   make(chan struct{}),
		spaceCh:  make(chan struct{}),
	}
}

// SetSpill attaches a spill for evicted entries. It must be called
// before the first append. A spill that garbage-collects (it implements
// SetFloor(func() int64)) is handed the log's GC floor so it never
// removes a segment a consumer could still be served from.
func (l *Log[T]) SetSpill(s Spill[T]) {
	l.mu.Lock()
	l.spill = s
	l.mu.Unlock()
	if f, ok := s.(interface{ SetFloor(func() int64) }); ok {
		f.SetFloor(l.gcFloor)
	}
}

// SetWriteThrough switches the log to write-ahead spilling: every
// append persists its entry to the attached spill *before* publishing
// it in the ring, instead of spilling lazily at ring eviction. With a
// Durable spill this is the crash-safe mode — an event a consumer was
// promised exists on disk by the time any reader can observe it, so a
// process kill loses nothing and a recovered log (Resume) continues the
// stream gap-free. Must be called before the first append, after
// SetSpill.
func (l *Log[T]) SetWriteThrough() {
	l.mu.Lock()
	l.wt = true
	if l.wtOnDisk == nil {
		l.wtOnDisk = make([]bool, len(l.ring))
	}
	l.mu.Unlock()
}

// Resume positions an empty log to continue a recovered stream: the
// next append takes sequence next, and acked seeds the acknowledgement
// floor (-1 = never acked — everything the spill retains stays
// retained). Sequences below next are served from the attached spill
// exactly as if the ring had evicted them. Must be called on a fresh
// log before any append or reader attaches, after SetSpill.
func (l *Log[T]) Resume(next, acked int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if next < 0 {
		next = 0
	}
	l.next = next
	l.first = next
	l.ackFloor = -1
	if acked >= 0 {
		a := acked + 1
		if a > next {
			a = next
		}
		l.ackFloor = a
	}
}

// Policy returns the log's delivery policy.
func (l *Log[T]) Policy() Policy {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.policy
}

// Capacity returns the ring size (a power of two).
func (l *Log[T]) Capacity() int { return len(l.ring) }

// floorLocked is the lowest sequence retention must honour: the least
// attached contribution (a reader's acknowledged position when it acks,
// its cursor otherwise), or — with no reader attached — the position
// the last reader detached at (initially 0, so a log nobody has read
// yet retains from the beginning, exactly like the buffered channel it
// replaces). Once anything has acked, the floor never rises past the
// acknowledged position: read-but-unacked events stay retained so a
// consumer that crashed before processing them finds them on resume.
func (l *Log[T]) floorLocked() int64 {
	if len(l.readers) == 0 {
		// With nobody attached the acknowledged position, once one
		// exists, is authoritative in both directions: it stays below a
		// parked read position (read-but-unacked events survive a crash)
		// and rises past it on an out-of-band ack from a disconnected
		// consumer.
		if l.ackFloor >= 0 {
			return l.ackFloor
		}
		return l.parked
	}
	floor := int64(-1)
	for r := range l.readers {
		if c := r.contributionLocked(); floor < 0 || c < floor {
			floor = c
		}
	}
	if l.ackFloor >= 0 && l.ackFloor < floor {
		floor = l.ackFloor
	}
	return floor
}

// gcFloor is the lowest sequence a garbage-collecting spill must keep.
// Under Block it equals the retention floor — the lossless promise
// extends to disk, and a writer blocks once the spill's budget fills
// rather than lose anything below it. Under DropOldest/Sample only
// attached readers and acknowledgements pin segments: a parked
// (detached) cursor does not, so the spill rotates its window forward
// within its budget — bounded lag is the policy's contract, and the
// evicted range surfaces as an honest gap on resume.
func (l *Log[T]) gcFloor() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.policy == Block {
		return l.floorLocked()
	}
	floor := l.next
	for r := range l.readers {
		if c := r.contributionLocked(); c < floor {
			floor = c
		}
	}
	if l.ackFloor >= 0 && l.ackFloor < floor {
		floor = l.ackFloor
	}
	return floor
}

// Ack records that every sequence through seq has been durably
// processed by the consuming side, without reference to a particular
// cursor — the out-of-band acknowledgement path (an HTTP client acking
// between streaming reads). The retention floor follows the
// acknowledged position from now on; acking is monotone and clamped to
// the sequences actually assigned. Returns the highest acked sequence.
func (l *Log[T]) Ack(seq int64) int64 {
	l.mu.Lock()
	n := seq + 1
	if n < 0 {
		n = 0 // acked nothing yet, but declared the intent: retain all
	}
	if n > l.next {
		n = l.next
	}
	if n > l.ackFloor {
		l.ackFloor = n
	}
	acked := l.ackFloor - 1
	wake := l.wakeSpaceLocked()
	l.mu.Unlock()
	if wake != nil {
		close(wake) // the floor may have advanced
	}
	return acked
}

// AckedSeq returns the highest acknowledged sequence, -1 when nothing
// has ever been acked.
func (l *Log[T]) AckedSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ackFloor < 0 {
		return -1
	}
	return l.ackFloor - 1
}

// wakeSpaceLocked arms a broadcast to writers blocked on the retention
// floor. The caller closes the returned channel (nil when nobody waits)
// after releasing l.mu.
func (l *Log[T]) wakeSpaceLocked() chan struct{} {
	if l.spaceWaiters == 0 {
		return nil
	}
	ch := l.spaceCh
	l.spaceCh = make(chan struct{})
	l.spaceWaiters = 0
	return ch
}

// Append writes v as the next sequenced entry. droppable marks events
// the Sample policy may decimate and DropOldest semantics apply to;
// terminal events (a stream's end marker) pass false so they always
// land, overwriting the oldest entry if the ring is full of unread
// events. abort, when non-nil, releases a Block-policy writer waiting
// for a consumer (the append is then counted dropped).
//
// Append reports whether the value was stored. It returns false after
// Close, on abort, and for events the policy shed.
func (l *Log[T]) Append(v T, droppable bool, abort <-chan struct{}) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	if droppable && l.policy == Sample {
		// Decide decimation before any eviction: a shed event must not
		// cost an unread ring entry. Past half the ring of unread
		// backlog keep 1 in 2, past three quarters 1 in 4, at a full
		// ring shed every droppable event.
		backlog := l.next - l.floorLocked()
		capacity := int64(len(l.ring))
		keepEvery := int64(1)
		switch {
		case backlog >= capacity:
			l.dropped++
			l.mu.Unlock()
			return false
		case backlog >= capacity*3/4:
			keepEvery = 4
		case backlog >= capacity/2:
			keepEvery = 2
		}
		if keepEvery > 1 {
			l.decim++
			if l.decim%keepEvery != 0 {
				l.dropped++
				l.mu.Unlock()
				return false
			}
		}
	}
	// Write-through: persist the entry before it becomes observable in
	// the ring. Block keeps its lossless promise across failures — a
	// full spill waits for the retention floor (an ack or a reader
	// advancing frees segments), a transient I/O error is retried — so
	// by the time the event publishes it is already on disk and a crash
	// at any later instant cannot lose it.
	wtStored := false
	if l.wt && l.spill != nil {
		seq, spill := l.next, l.spill
		retries := 0
		for {
			l.mu.Unlock()
			err := spill.Append(seq, v)
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return false
			}
			if err == nil {
				wtStored = true
				break
			}
			if l.policy != Block {
				break // lossy policies take the ring-only entry as-is
			}
			if errors.Is(err, ErrSpillFull) {
				if !droppable {
					break // terminal events must land now; ring carries them
				}
				l.spaceWaiters++
				ch := l.spaceCh
				l.mu.Unlock()
				if abort == nil {
					<-ch
				} else {
					select {
					case <-ch:
					case <-abort:
						l.mu.Lock()
						l.dropped++
						l.mu.Unlock()
						return false
					}
				}
				l.mu.Lock()
				if l.closed {
					l.mu.Unlock()
					return false
				}
				continue
			}
			if retries >= 50 {
				break // persistently failing device: degrade to ring-only
			}
			retries++
			l.mu.Unlock()
			if abort == nil {
				time.Sleep(2 * time.Millisecond)
			} else {
				select {
				case <-abort:
					l.mu.Lock()
					l.dropped++
					l.mu.Unlock()
					return false
				case <-time.After(2 * time.Millisecond):
				}
			}
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return false
			}
		}
	}
	for l.next-l.first >= int64(len(l.ring)) {
		// Full ring. Spill the evictee first — with a spill attached the
		// resumable window is ring plus spill, so the policy only acts
		// (block, drop) on entries the spill refused. The write happens
		// outside the lock: file I/O must not stall every reader and the
		// telemetry getters. Safe because the log is single-writer:
		// nothing else advances first while we are unlocked, and writing
		// the spill entry before first moves means a reader can never
		// see cursor < first without the spill already holding the
		// entry. In write-through mode the evictee was (dis)spilled at
		// its own append; re-appending it here would be out of order.
		spilled := false
		if l.spill != nil && l.wt {
			spilled = l.wtOnDisk[l.first&l.mask]
		} else if l.spill != nil {
			seq, v := l.first, l.ring[l.first&l.mask]
			spill := l.spill
			l.mu.Unlock()
			spilled = spill.Append(seq, v) == nil
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return false
			}
		}
		// Eviction of a consumed (or spilled) entry is always allowed;
		// losing an unread one is what the policy decides.
		if !spilled && l.first >= l.floorLocked() {
			if l.policy == Block && droppable {
				l.spaceWaiters++
				ch := l.spaceCh
				l.mu.Unlock()
				if abort == nil {
					<-ch
				} else {
					select {
					case <-ch:
					case <-abort:
						l.mu.Lock()
						l.dropped++
						l.mu.Unlock()
						return false
					}
				}
				l.mu.Lock()
				if l.closed {
					l.mu.Unlock()
					return false
				}
				continue
			}
			// DropOldest, Sample at full pressure (non-droppable), or a
			// terminal event under any policy: overwrite the oldest
			// unread so the event always lands.
			l.dropped++
		}
		var zero T
		l.ring[l.first&l.mask] = zero
		l.first++
	}
	l.ring[l.next&l.mask] = v
	if l.wt {
		l.wtOnDisk[l.next&l.mask] = wtStored
	}
	l.next++
	var wake chan struct{}
	if l.dataWaiters > 0 {
		wake = l.dataCh
		l.dataCh = make(chan struct{})
		l.dataWaiters = 0
	}
	l.mu.Unlock()
	if wake != nil {
		close(wake) // wake readers parked on the tail
	}
	return true
}

// Close marks the log complete: appends fail from now on, and readers
// drain what remains and then see the end of the stream. Idempotent.
func (l *Log[T]) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	data, space := l.dataCh, l.spaceCh
	l.dataCh = make(chan struct{})
	l.spaceCh = make(chan struct{})
	l.mu.Unlock()
	close(data)
	close(space)
}

// NextSeq returns the sequence number the next append will take — the
// count of events ever stored.
func (l *Log[T]) NextSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// FirstRetained returns the oldest sequence still in the ring.
func (l *Log[T]) FirstRetained() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// Dropped returns how many events were lost to the policy: shed by
// sampling, overwritten unread under DropOldest, or abandoned by an
// aborted blocking append.
func (l *Log[T]) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Readers returns the number of attached readers.
func (l *Log[T]) Readers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.readers)
}

// Lag returns how far the slowest attached reader (or the parked
// retention floor, when none is attached) trails the writer, in events.
func (l *Log[T]) Lag() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - l.floorLocked()
}

// Reader is one consumer's cursor over the log. Readers are created by
// ReaderFrom, advance with Next, and must be detached with Detach when
// the consumer goes away so a Block-policy writer stops waiting on them.
// A reader that acknowledges (Ack) contributes its acknowledged position
// to the retention floor instead of its read position.
type Reader[T any] struct {
	log    *Log[T]
	cursor int64
	acked  int64 // one past the highest seq this reader acked; -1 = never
	pager  bool  // transient page reader: Detach does not park the floor
}

// ReaderFrom attaches a reader positioned at seq. Negative seq means
// "live tail": the reader starts at the next event to be appended,
// skipping history. A seq above the current tail is clamped to it.
func (l *Log[T]) ReaderFrom(seq int64) *Reader[T] {
	return l.attach(seq, false)
}

// PagerFrom attaches a transient reader positioned at seq for paging
// through history: while attached it pins retention like any reader (so
// a page is never pulled out from under it), but detaching does not
// park the retention floor at its position — paging a finished query
// from sequence 0 must not commit a Block-policy writer to retaining
// everything for a consumer that was only browsing.
func (l *Log[T]) PagerFrom(seq int64) *Reader[T] {
	return l.attach(seq, true)
}

func (l *Log[T]) attach(seq int64, pager bool) *Reader[T] {
	l.mu.Lock()
	if seq < 0 || seq > l.next {
		seq = l.next
	}
	r := &Reader[T]{log: l, cursor: seq, acked: -1, pager: pager}
	l.readers[r] = struct{}{}
	// Attaching can raise the retention floor: a reader joining at the
	// live tail while the parked floor sits at a full ring's base moves
	// floorLocked past every retained entry. A Block-policy writer may be
	// waiting on the old floor, so wake it to re-evaluate — otherwise
	// writer and the new reader deadlock on each other.
	wake := l.wakeSpaceLocked()
	l.mu.Unlock()
	if wake != nil {
		close(wake)
	}
	return r
}

// Cursor returns the sequence number of the next item the reader will
// deliver.
func (r *Reader[T]) Cursor() int64 {
	r.log.mu.Lock()
	defer r.log.mu.Unlock()
	return r.cursor
}

// contributionLocked is the position this reader pins retention at: the
// acknowledged position once it acks, the read position before.
func (r *Reader[T]) contributionLocked() int64 {
	if r.acked >= 0 {
		return r.acked
	}
	return r.cursor
}

// Ack records that the consumer behind this reader durably processed
// every sequence through seq. From the first Ack on, the reader pins
// retention at its acknowledged position rather than its read position:
// events it read but never acked stay retained (under Block) for an
// exact resume after a crash. Acks are monotone and clamped to the
// reader's cursor — a consumer cannot ack what this reader has not
// delivered. Returns the reader's highest acked sequence.
func (r *Reader[T]) Ack(seq int64) int64 {
	l := r.log
	l.mu.Lock()
	n := seq + 1
	if n < 0 {
		n = 0
	}
	if n > r.cursor {
		n = r.cursor
	}
	if n > r.acked {
		r.acked = n
	}
	// The log-level floor follows the furthest ack seen on any path, so
	// an in-band ack here and an out-of-band Log.Ack converge.
	if r.acked > l.ackFloor {
		l.ackFloor = r.acked
	}
	acked := r.acked - 1
	wake := l.wakeSpaceLocked()
	l.mu.Unlock()
	if wake != nil {
		close(wake) // the floor may have advanced
	}
	return acked
}

// Next delivers the reader's next item, blocking until one is available,
// the log is closed and drained (ok false), or abort fires (ok false).
// An item is either a value with its sequence number or a gap notice
// covering evicted sequences the spill could not serve; after a gap the
// reader continues at the gap's To.
func (r *Reader[T]) Next(abort <-chan struct{}) (Item[T], bool) {
	l := r.log
	retried := false
	l.mu.Lock()
	for {
		if r.cursor < l.next {
			if r.cursor < l.first {
				// Behind the ring: serve from the spill when attached,
				// otherwise report the evicted range as a gap.
				if l.spill != nil {
					seq := r.cursor
					spill := l.spill
					l.mu.Unlock()
					// Spill reads happen outside the lock (they may hit a
					// file); the entry is immutable once spilled.
					if v, ok := spill.Read(seq); ok {
						l.mu.Lock()
						r.advanceLocked(seq + 1)
						l.mu.Unlock()
						return Item[T]{Seq: seq, Value: v}, true
					}
					// Also queried outside the lock: a garbage-collecting
					// spill takes its own lock and may call back into the
					// log for the GC floor.
					nxt, ok := spill.NextRetained(seq)
					l.mu.Lock()
					if r.cursor >= l.first { // raced: entry back in range
						continue
					}
					if ok && nxt <= r.cursor {
						// The spill indexes cursor but the read missed:
						// usually the entry landed between the two calls —
						// retry once. A persistently unreadable entry is
						// skipped as a one-event gap rather than looped on.
						if !retried {
							retried = true
							continue
						}
						nxt = r.cursor + 1
					}
					to := l.first
					if ok && nxt < to {
						// Gap only to the next position the spill can still
						// serve — holes and expired prefixes, not the whole
						// spill window.
						to = nxt
					}
					gap := &Gap{From: r.cursor, To: to}
					r.advanceLocked(to)
					l.mu.Unlock()
					return Item[T]{Seq: gap.From, Gap: gap}, true
				}
				gap := &Gap{From: r.cursor, To: l.first}
				r.advanceLocked(l.first)
				l.mu.Unlock()
				return Item[T]{Seq: gap.From, Gap: gap}, true
			}
			seq := r.cursor
			v := l.ring[seq&l.mask]
			r.advanceLocked(seq + 1)
			l.mu.Unlock()
			return Item[T]{Seq: seq, Value: v}, true
		}
		if l.closed {
			l.mu.Unlock()
			return Item[T]{}, false
		}
		l.dataWaiters++
		ch := l.dataCh
		l.mu.Unlock()
		if abort == nil {
			<-ch
		} else {
			select {
			case <-ch:
			case <-abort:
				return Item[T]{}, false
			}
		}
		l.mu.Lock()
	}
}

// advanceLocked moves the cursor and wakes a writer blocked on the
// retention floor, if any (caller holds l.mu).
func (r *Reader[T]) advanceLocked(to int64) {
	r.cursor = to
	l := r.log
	if l.spaceWaiters == 0 {
		return
	}
	ch := l.spaceCh
	l.spaceCh = make(chan struct{})
	l.spaceWaiters = 0
	close(ch)
}

// Detach removes the reader from the retention floor. The position it
// contributed — its acknowledged position if it acked, its read
// position otherwise — is parked: if no other durable reader is
// attached, a Block-policy writer retains from there so the consumer
// can resume gap-free (and, when it acked, exactly from one past its
// last ack). Pagers never park. Idempotent.
func (r *Reader[T]) Detach() {
	l := r.log
	l.mu.Lock()
	if _, ok := l.readers[r]; !ok {
		l.mu.Unlock()
		return
	}
	delete(l.readers, r)
	if !r.pager {
		durable := false
		for o := range l.readers {
			if !o.pager {
				durable = true
				break
			}
		}
		if !durable {
			l.parked = r.contributionLocked()
		}
	}
	wake := l.wakeSpaceLocked()
	l.mu.Unlock()
	if wake != nil {
		close(wake) // the floor may have advanced
	}
}
