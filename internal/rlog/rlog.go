// Package rlog is the server's result-delivery subsystem: a bounded,
// monotonically-sequenced per-query result log. The continuous-query
// server appends every event a query produces into one Log; any number
// of consumers read it through per-consumer cursors, resume from a
// sequence number after a disconnect, and — when the ring has wrapped
// past their position — receive an explicit gap notice instead of a
// silently spliced stream.
//
// The log replaces the per-registration event channel the server used
// before: a channel couples production to exactly one consumer's pace
// and loses everything an absent consumer never read. The log decouples
// them with three per-query delivery policies:
//
//   - Block: lossless. The writer blocks rather than overwrite an event
//     no consumer has taken responsibility for — the channel contract,
//     but resumable: a consumer that disconnects and returns with
//     ?from=<seq> sees a gap-free stream.
//   - DropOldest: bounded lag. The writer never blocks; when the ring is
//     full of unconsumed events the oldest is overwritten (and counted
//     dropped). Slow consumers observe a gap and keep up from there.
//   - Sample: graceful degradation. As unconsumed backlog crosses half
//     the ring the writer decimates droppable events (keeping every 2nd,
//     then every 4th, then none) so a consumer under pressure still sees
//     a representative sample at bounded staleness.
//
// Storage is a power-of-two ring buffer indexed by sequence & mask, so
// retained sequence numbers are always the contiguous interval
// [firstRetained, nextSeq). An optional Spill receives entries as they
// are evicted from the ring; a reader positioned below firstRetained is
// served from the spill when one is attached, and reports a gap
// otherwise.
//
// The Log is single-writer (sequence assignment needs no coordination)
// and multi-reader; all methods are safe for concurrent use.
package rlog

import (
	"math/bits"
	"sync"
)

// Policy selects what the writer does when appending would overwrite an
// event no consumer has read yet.
type Policy string

// Delivery policies.
const (
	// Block makes the writer wait for the slowest consumer — lossless
	// delivery, at the cost of back-pressuring the producer.
	Block Policy = "block"
	// DropOldest overwrites the oldest unread event — bounded memory and
	// a never-blocked producer, at the cost of gaps for slow consumers.
	DropOldest Policy = "drop-oldest"
	// Sample decimates incoming droppable events once unread backlog
	// crosses half the ring (1-in-2, then 1-in-4 past three quarters,
	// then none when full) — consumers under pressure see a thinned but
	// current stream instead of an ever-staler complete one.
	Sample Policy = "sample-under-pressure"
)

// ParsePolicy resolves a policy name; the empty string selects Block
// (the lossless pre-log contract).
func ParsePolicy(s string) (Policy, bool) {
	switch Policy(s) {
	case "", Block:
		return Block, true
	case DropOldest:
		return DropOldest, true
	case Sample:
		return Sample, true
	}
	return "", false
}

// Gap reports a range of sequence numbers a reader could not be served:
// [From, To) was dropped or evicted before the reader got there.
type Gap struct {
	From int64
	To   int64
}

// Item is one delivery to a reader: either a logged value with its
// sequence number, or a gap notice (Gap non-nil, Value the zero value).
type Item[T any] struct {
	Seq   int64
	Value T
	Gap   *Gap
}

// Spill receives entries as they are evicted from the ring, extending
// the resumable window beyond the ring's capacity. Implementations must
// be safe for one appender and concurrent readers.
type Spill[T any] interface {
	// Append persists one evicted entry. Entries arrive in sequence
	// order, exactly once.
	Append(seq int64, v T) error
	// Read returns the entry for seq, or false when it is not held
	// (never spilled, expired, or a read error).
	Read(seq int64) (T, bool)
	// FirstRetained returns the lowest sequence the spill still holds
	// (false when empty), so a reader below it gaps exactly to the
	// resumable boundary instead of skipping the whole spill window.
	FirstRetained() (int64, bool)
}

// Log is one query's bounded, sequenced result log.
type Log[T any] struct {
	mu      sync.Mutex
	ring    []T
	mask    int64
	policy  Policy
	spill   Spill[T]
	next    int64 // sequence of the next append
	first   int64 // oldest sequence still in the ring
	parked  int64 // retention floor while no reader is attached
	readers map[*Reader[T]]struct{}
	dropped int64
	decim   int64 // sample-policy decimation counter
	closed  bool

	// dataCh is closed and replaced to wake readers blocked on the tail;
	// spaceCh likewise to wake a writer blocked on the retention floor.
	// Channel-based broadcast keeps both waits selectable against
	// caller-supplied abort channels. The waiter counts gate the
	// close-and-replace: with nobody parked (the steady state for
	// DropOldest/Sample, and for readers keeping up) appends and cursor
	// advances skip the per-event channel allocation entirely. A count
	// is an upper bound — an aborted waiter leaves it stale until the
	// next broadcast resets it, costing at most one spurious wake.
	dataCh       chan struct{}
	spaceCh      chan struct{}
	dataWaiters  int
	spaceWaiters int
}

// New creates a log with the given policy retaining at least capacity
// entries (rounded up to a power of two; minimum 8, maximum 2^30 — the
// clamp keeps the rounding from overflowing when a caller forwards an
// unvalidated capacity). A nil-able spill may be attached with SetSpill
// before the first append.
func New[T any](capacity int, policy Policy) *Log[T] {
	if capacity < 8 {
		capacity = 8
	}
	if capacity > 1<<30 {
		capacity = 1 << 30
	}
	capacity = 1 << bits.Len(uint(capacity-1)) // next power of two
	if policy == "" {
		policy = Block
	}
	return &Log[T]{
		ring:    make([]T, capacity),
		mask:    int64(capacity - 1),
		policy:  policy,
		readers: make(map[*Reader[T]]struct{}),
		dataCh:  make(chan struct{}),
		spaceCh: make(chan struct{}),
	}
}

// SetSpill attaches a spill for evicted entries. It must be called
// before the first append.
func (l *Log[T]) SetSpill(s Spill[T]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spill = s
}

// Policy returns the log's delivery policy.
func (l *Log[T]) Policy() Policy {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.policy
}

// Capacity returns the ring size (a power of two).
func (l *Log[T]) Capacity() int { return len(l.ring) }

// floorLocked is the lowest sequence retention must honour: the least
// attached cursor, or — with no reader attached — the position the last
// reader detached at (initially 0, so a log nobody has read yet retains
// from the beginning, exactly like the buffered channel it replaces).
func (l *Log[T]) floorLocked() int64 {
	if len(l.readers) == 0 {
		return l.parked
	}
	min := int64(-1)
	for r := range l.readers {
		if min < 0 || r.cursor < min {
			min = r.cursor
		}
	}
	return min
}

// Append writes v as the next sequenced entry. droppable marks events
// the Sample policy may decimate and DropOldest semantics apply to;
// terminal events (a stream's end marker) pass false so they always
// land, overwriting the oldest entry if the ring is full of unread
// events. abort, when non-nil, releases a Block-policy writer waiting
// for a consumer (the append is then counted dropped).
//
// Append reports whether the value was stored. It returns false after
// Close, on abort, and for events the policy shed.
func (l *Log[T]) Append(v T, droppable bool, abort <-chan struct{}) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	if droppable && l.policy == Sample {
		// Decide decimation before any eviction: a shed event must not
		// cost an unread ring entry. Past half the ring of unread
		// backlog keep 1 in 2, past three quarters 1 in 4, at a full
		// ring shed every droppable event.
		backlog := l.next - l.floorLocked()
		capacity := int64(len(l.ring))
		keepEvery := int64(1)
		switch {
		case backlog >= capacity:
			l.dropped++
			l.mu.Unlock()
			return false
		case backlog >= capacity*3/4:
			keepEvery = 4
		case backlog >= capacity/2:
			keepEvery = 2
		}
		if keepEvery > 1 {
			l.decim++
			if l.decim%keepEvery != 0 {
				l.dropped++
				l.mu.Unlock()
				return false
			}
		}
	}
	for l.next-l.first >= int64(len(l.ring)) {
		// Full ring. Eviction of an already-consumed entry is always
		// allowed; losing an unread one is what the policy decides.
		if l.first >= l.floorLocked() {
			if l.policy == Block && droppable {
				l.spaceWaiters++
				ch := l.spaceCh
				l.mu.Unlock()
				if abort == nil {
					<-ch
				} else {
					select {
					case <-ch:
					case <-abort:
						l.mu.Lock()
						l.dropped++
						l.mu.Unlock()
						return false
					}
				}
				l.mu.Lock()
				if l.closed {
					l.mu.Unlock()
					return false
				}
				continue
			}
			// DropOldest, Sample at full pressure (non-droppable), or a
			// terminal event under any policy: overwrite the oldest
			// unread so the event always lands.
			l.dropped++
		}
		// Spill the evictee outside the lock — file I/O must not stall
		// every reader and the telemetry getters. Safe because the log
		// is single-writer: nothing else advances first while we are
		// unlocked, and writing the spill entry before first moves means
		// a reader can never see cursor < first without the spill
		// already holding the entry.
		if l.spill != nil {
			seq, v := l.first, l.ring[l.first&l.mask]
			spill := l.spill
			l.mu.Unlock()
			_ = spill.Append(seq, v)
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return false
			}
		}
		var zero T
		l.ring[l.first&l.mask] = zero
		l.first++
	}
	l.ring[l.next&l.mask] = v
	l.next++
	var wake chan struct{}
	if l.dataWaiters > 0 {
		wake = l.dataCh
		l.dataCh = make(chan struct{})
		l.dataWaiters = 0
	}
	l.mu.Unlock()
	if wake != nil {
		close(wake) // wake readers parked on the tail
	}
	return true
}

// Close marks the log complete: appends fail from now on, and readers
// drain what remains and then see the end of the stream. Idempotent.
func (l *Log[T]) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	data, space := l.dataCh, l.spaceCh
	l.dataCh = make(chan struct{})
	l.spaceCh = make(chan struct{})
	l.mu.Unlock()
	close(data)
	close(space)
}

// NextSeq returns the sequence number the next append will take — the
// count of events ever stored.
func (l *Log[T]) NextSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// FirstRetained returns the oldest sequence still in the ring.
func (l *Log[T]) FirstRetained() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// Dropped returns how many events were lost to the policy: shed by
// sampling, overwritten unread under DropOldest, or abandoned by an
// aborted blocking append.
func (l *Log[T]) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Readers returns the number of attached readers.
func (l *Log[T]) Readers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.readers)
}

// Lag returns how far the slowest attached reader (or the parked
// retention floor, when none is attached) trails the writer, in events.
func (l *Log[T]) Lag() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - l.floorLocked()
}

// Reader is one consumer's cursor over the log. Readers are created by
// ReaderFrom, advance with Next, and must be detached with Detach when
// the consumer goes away so a Block-policy writer stops waiting on them.
type Reader[T any] struct {
	log    *Log[T]
	cursor int64
}

// ReaderFrom attaches a reader positioned at seq. Negative seq means
// "live tail": the reader starts at the next event to be appended,
// skipping history. A seq above the current tail is clamped to it.
func (l *Log[T]) ReaderFrom(seq int64) *Reader[T] {
	l.mu.Lock()
	if seq < 0 || seq > l.next {
		seq = l.next
	}
	r := &Reader[T]{log: l, cursor: seq}
	l.readers[r] = struct{}{}
	// Attaching can raise the retention floor: a reader joining at the
	// live tail while the parked floor sits at a full ring's base moves
	// floorLocked past every retained entry. A Block-policy writer may be
	// waiting on the old floor, so wake it to re-evaluate — otherwise
	// writer and the new reader deadlock on each other.
	var wake chan struct{}
	if l.spaceWaiters > 0 {
		wake = l.spaceCh
		l.spaceCh = make(chan struct{})
		l.spaceWaiters = 0
	}
	l.mu.Unlock()
	if wake != nil {
		close(wake)
	}
	return r
}

// Cursor returns the sequence number of the next item the reader will
// deliver.
func (r *Reader[T]) Cursor() int64 {
	r.log.mu.Lock()
	defer r.log.mu.Unlock()
	return r.cursor
}

// Next delivers the reader's next item, blocking until one is available,
// the log is closed and drained (ok false), or abort fires (ok false).
// An item is either a value with its sequence number or a gap notice
// covering evicted sequences the spill could not serve; after a gap the
// reader continues at the gap's To.
func (r *Reader[T]) Next(abort <-chan struct{}) (Item[T], bool) {
	l := r.log
	l.mu.Lock()
	for {
		if r.cursor < l.next {
			if r.cursor < l.first {
				// Behind the ring: serve from the spill when attached,
				// otherwise report the evicted range as a gap.
				if l.spill != nil {
					seq := r.cursor
					spill := l.spill
					l.mu.Unlock()
					// Spill reads happen outside the lock (they may hit a
					// file); the entry is immutable once spilled.
					if v, ok := spill.Read(seq); ok {
						l.mu.Lock()
						r.advanceLocked(seq + 1)
						l.mu.Unlock()
						return Item[T]{Seq: seq, Value: v}, true
					}
					l.mu.Lock()
					if r.cursor >= l.first { // raced: entry back in range
						continue
					}
					// The spill no longer holds cursor; gap only to the
					// oldest position something can still serve.
					if low, ok := spill.FirstRetained(); ok && low > r.cursor && low < l.first {
						gap := &Gap{From: r.cursor, To: low}
						r.advanceLocked(low)
						l.mu.Unlock()
						return Item[T]{Seq: gap.From, Gap: gap}, true
					}
				}
				gap := &Gap{From: r.cursor, To: l.first}
				r.advanceLocked(l.first)
				l.mu.Unlock()
				return Item[T]{Seq: gap.From, Gap: gap}, true
			}
			seq := r.cursor
			v := l.ring[seq&l.mask]
			r.advanceLocked(seq + 1)
			l.mu.Unlock()
			return Item[T]{Seq: seq, Value: v}, true
		}
		if l.closed {
			l.mu.Unlock()
			return Item[T]{}, false
		}
		l.dataWaiters++
		ch := l.dataCh
		l.mu.Unlock()
		if abort == nil {
			<-ch
		} else {
			select {
			case <-ch:
			case <-abort:
				return Item[T]{}, false
			}
		}
		l.mu.Lock()
	}
}

// advanceLocked moves the cursor and wakes a writer blocked on the
// retention floor, if any (caller holds l.mu).
func (r *Reader[T]) advanceLocked(to int64) {
	r.cursor = to
	l := r.log
	if l.spaceWaiters == 0 {
		return
	}
	ch := l.spaceCh
	l.spaceCh = make(chan struct{})
	l.spaceWaiters = 0
	close(ch)
}

// Detach removes the reader from the retention floor. The position it
// reached is parked: if no other reader is attached, a Block-policy
// writer retains from here so the consumer can resume gap-free.
// Idempotent.
func (r *Reader[T]) Detach() {
	l := r.log
	l.mu.Lock()
	if _, ok := l.readers[r]; !ok {
		l.mu.Unlock()
		return
	}
	delete(l.readers, r)
	if len(l.readers) == 0 {
		l.parked = r.cursor
	}
	var wake chan struct{}
	if l.spaceWaiters > 0 {
		wake = l.spaceCh
		l.spaceCh = make(chan struct{})
		l.spaceWaiters = 0
	}
	l.mu.Unlock()
	if wake != nil {
		close(wake) // the floor may have advanced
	}
}
