package rlog

import (
	"sync"
	"testing"
	"time"
)

// appendN appends values v..v+n-1 as droppable events, requiring each
// store outcome to match want.
func appendN(t *testing.T, l *Log[int], from, n int, want bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		if got := l.Append(from+i, true, nil); got != want {
			t.Fatalf("append %d stored=%v, want %v", from+i, got, want)
		}
	}
}

// Sequences are monotonic from zero and contiguous for stored entries.
func TestLogSequencesAreContiguous(t *testing.T) {
	l := New[int](16, Block)
	appendN(t, l, 0, 10, true)
	if l.NextSeq() != 10 || l.FirstRetained() != 0 {
		t.Fatalf("next %d first %d", l.NextSeq(), l.FirstRetained())
	}
	r := l.ReaderFrom(0)
	for i := 0; i < 10; i++ {
		it, ok := r.Next(nil)
		if !ok || it.Gap != nil || it.Seq != int64(i) || it.Value != i {
			t.Fatalf("read %d: %+v ok=%v", i, it, ok)
		}
	}
	l.Close()
	if _, ok := r.Next(nil); ok {
		t.Fatal("closed drained log still yields items")
	}
}

// Capacity rounds up to a power of two and the ring retains exactly that
// many entries once everyone has consumed them.
func TestLogCapacityPowerOfTwo(t *testing.T) {
	l := New[int](100, DropOldest)
	if l.Capacity() != 128 {
		t.Fatalf("capacity %d, want 128", l.Capacity())
	}
	appendN(t, l, 0, 300, true)
	if got := l.FirstRetained(); got != 300-128 {
		t.Fatalf("first retained %d, want %d", got, 300-128)
	}
}

// Block policy: the writer must not overwrite an unread entry — it waits
// for the slowest attached reader, then proceeds.
func TestLogBlockPolicyBackpressures(t *testing.T) {
	l := New[int](8, Block)
	r := l.ReaderFrom(0)
	appendN(t, l, 0, 8, true) // ring full, reader at 0

	stored := make(chan bool)
	go func() { stored <- l.Append(8, true, nil) }()
	select {
	case <-stored:
		t.Fatal("append succeeded over an unread full ring")
	case <-time.After(20 * time.Millisecond):
	}
	if it, ok := r.Next(nil); !ok || it.Seq != 0 {
		t.Fatalf("reader got %+v", it)
	}
	if ok := <-stored; !ok {
		t.Fatal("append failed after space freed")
	}
	// No drops, no gaps on the block path.
	if l.Dropped() != 0 {
		t.Fatalf("dropped %d on block policy", l.Dropped())
	}
	r.Detach()
}

// Block policy aborts: a writer waiting on a full ring must release when
// the abort channel fires (the registration was cancelled).
func TestLogBlockAppendAborts(t *testing.T) {
	l := New[int](8, Block)
	l.ReaderFrom(0) // pin the floor
	appendN(t, l, 0, 8, true)
	abort := make(chan struct{})
	stored := make(chan bool)
	go func() { stored <- l.Append(8, true, abort) }()
	close(abort)
	if ok := <-stored; ok {
		t.Fatal("aborted append reported stored")
	}
	if l.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", l.Dropped())
	}
}

// DropOldest: the writer never blocks; a trailing reader observes one
// gap covering exactly the overwritten range, then a contiguous tail.
func TestLogDropOldestGapsTrailingReader(t *testing.T) {
	l := New[int](8, DropOldest)
	r := l.ReaderFrom(0)
	appendN(t, l, 0, 20, true) // 12 oldest overwritten
	if l.Dropped() != 12 {
		t.Fatalf("dropped %d, want 12", l.Dropped())
	}
	it, ok := r.Next(nil)
	if !ok || it.Gap == nil || it.Gap.From != 0 || it.Gap.To != 12 {
		t.Fatalf("first read %+v, want gap [0,12)", it)
	}
	for i := 12; i < 20; i++ {
		it, ok := r.Next(nil)
		if !ok || it.Gap != nil || it.Value != i {
			t.Fatalf("read %+v, want %d", it, i)
		}
	}
}

// A detached reader parks the retention floor, so a Block writer keeps
// retaining from the disconnect point and a resumed reader is gap-free.
func TestLogDetachParksFloorForResume(t *testing.T) {
	l := New[int](8, Block)
	r := l.ReaderFrom(0)
	appendN(t, l, 0, 4, true)
	for i := 0; i < 4; i++ {
		r.Next(nil)
	}
	r.Detach() // consumer disconnects at seq 4

	appendN(t, l, 4, 8, true) // exactly fills [4,12) — must not block or drop
	done := make(chan bool)
	go func() { done <- l.Append(12, true, nil) }()
	select {
	case <-done:
		t.Fatal("writer overwrote the parked floor")
	case <-time.After(20 * time.Millisecond):
	}

	r2 := l.ReaderFrom(4) // resume where we left
	for i := 4; i < 12; i++ {
		it, ok := r2.Next(nil)
		if !ok || it.Gap != nil || it.Value != i {
			t.Fatalf("resumed read %+v, want %d", it, i)
		}
	}
	if ok := <-done; !ok {
		t.Fatal("writer did not resume after the reader caught up")
	}
	r2.Detach()
}

// Attaching a reader can raise the retention floor (live tail past a
// parked floor); a Block writer waiting on the old floor must wake and
// proceed rather than deadlock with its newly-connected consumer.
func TestLogReaderFromWakesBlockedWriter(t *testing.T) {
	l := New[int](8, Block)
	appendN(t, l, 0, 8, true) // ring full, parked floor at 0

	stored := make(chan bool)
	go func() { stored <- l.Append(8, true, nil) }()
	select {
	case <-stored:
		t.Fatal("append succeeded over an unread full ring")
	case <-time.After(20 * time.Millisecond):
	}

	r := l.ReaderFrom(-1) // attach at the live tail: floor jumps 0 -> 8
	select {
	case ok := <-stored:
		if !ok {
			t.Fatal("append failed after the floor advanced")
		}
	case <-time.After(time.Second):
		t.Fatal("writer still blocked after a tail reader raised the floor")
	}
	if it, ok := r.Next(nil); !ok || it.Gap != nil || it.Seq != 8 || it.Value != 8 {
		t.Fatalf("tail reader got %+v ok=%v, want seq 8", it, ok)
	}
	r.Detach()
}

// Sample: under backlog pressure droppable events are decimated, the
// drop counter accounts for them, and non-droppable events always land.
func TestLogSampleDecimatesUnderPressure(t *testing.T) {
	l := New[int](16, Sample)
	l.ReaderFrom(0) // floor pinned at 0: backlog grows with every append
	stored := 0
	for i := 0; i < 64; i++ {
		if l.Append(i, true, nil) {
			stored++
		}
	}
	if stored >= 64 || stored < 8 {
		t.Fatalf("sample stored %d of 64", stored)
	}
	if l.Dropped() != int64(64-stored) {
		t.Fatalf("dropped %d, stored %d", l.Dropped(), stored)
	}
	if !l.Append(999, false, nil) {
		t.Fatal("non-droppable event shed by sampling")
	}
}

// Late reader at a negative seq tails the log: history is skipped.
func TestLogReaderLiveTail(t *testing.T) {
	l := New[int](8, DropOldest)
	appendN(t, l, 0, 5, true)
	r := l.ReaderFrom(-1)
	go func() {
		time.Sleep(5 * time.Millisecond)
		l.Append(100, true, nil)
	}()
	it, ok := r.Next(nil)
	if !ok || it.Value != 100 || it.Seq != 5 {
		t.Fatalf("tail read %+v", it)
	}
}

// Readers abort promptly when their consumer goes away mid-wait.
func TestLogReaderAborts(t *testing.T) {
	l := New[int](8, Block)
	r := l.ReaderFrom(0)
	abort := make(chan struct{})
	done := make(chan bool)
	go func() {
		_, ok := r.Next(abort)
		done <- ok
	}()
	close(abort)
	if ok := <-done; ok {
		t.Fatal("aborted read returned an item")
	}
	r.Detach()
}

// Concurrent writer + several readers + churn under -race: every reader
// sees a monotone, gap-annotated sequence with no duplicates.
func TestLogConcurrentReadersRace(t *testing.T) {
	l := New[int](32, DropOldest)
	const total = 2000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := l.ReaderFrom(0)
			defer r.Detach()
			last := int64(-1)
			for {
				it, ok := r.Next(nil)
				if !ok {
					return
				}
				if it.Gap != nil {
					if it.Gap.To <= it.Gap.From || it.Gap.From <= last {
						panic("bad gap")
					}
					last = it.Gap.To - 1
					continue
				}
				if it.Seq <= last {
					panic("sequence went backwards")
				}
				last = it.Seq
			}
		}(w)
	}
	for i := 0; i < total; i++ {
		l.Append(i, true, nil)
	}
	l.Close()
	wg.Wait()
	if l.NextSeq() != total {
		t.Fatalf("next seq %d", l.NextSeq())
	}
}

// The spill serves evicted entries so a far-behind reader resumes with
// no gap.
func TestLogFileSpillServesEvicted(t *testing.T) {
	spill, err := NewFileSpill[int](t.TempDir(), SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()
	l := New[int](8, DropOldest)
	l.SetSpill(spill)
	appendN(t, l, 0, 40, true) // 32 evicted into the spill
	if spill.Entries() != 32 {
		t.Fatalf("spill holds %d entries, want 32", spill.Entries())
	}
	if got := l.Dropped(); got != 0 {
		t.Fatalf("spilled evictions counted dropped: %d", got)
	}
	r := l.ReaderFrom(0)
	for i := 0; i < 40; i++ {
		it, ok := r.Next(nil)
		if !ok || it.Gap != nil || it.Value != i || it.Seq != int64(i) {
			t.Fatalf("spill-backed read %d: %+v", i, it)
		}
	}
	r.Detach()
}

// A budget-bounded spill under DropOldest: old segments are collected,
// and reads below the retained window gap exactly to the spill's first
// retained sequence rather than failing or skipping the whole window.
func TestLogFileSpillBoundedBudget(t *testing.T) {
	spill, err := NewFileSpill[int](t.TempDir(), SpillConfig{SegmentBytes: 64, RetainBytes: 192})
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()
	l := New[int](8, DropOldest)
	l.SetSpill(spill)
	appendN(t, l, 0, 64, true) // 56 evicted; the budget prunes the oldest segments
	if got := spill.SizeBytes(); got > 192 {
		t.Fatalf("spill size %d exceeds its 192-byte budget", got)
	}
	low, ok := spill.FirstRetained()
	if !ok || low <= 0 || low >= 56 {
		t.Fatalf("first retained %d ok=%v, want pruned window inside (0,56)", low, ok)
	}
	r := l.ReaderFrom(0)
	it, ok := r.Next(nil)
	if !ok || it.Gap == nil || it.Gap.From != 0 || it.Gap.To != low {
		t.Fatalf("first read %+v, want gap [0,%d)", it, low)
	}
	for i := int(low); i < 64; i++ {
		it, ok := r.Next(nil)
		if !ok || it.Gap != nil || it.Value != i {
			t.Fatalf("read %+v, want %d", it, i)
		}
	}
	r.Detach()
}

// Acks move the retention floor to the acknowledged position: under
// Block the writer may evict read-but-acked entries, and waits on the
// first read-but-unacked one until the ack arrives.
func TestLogAckMovesRetentionFloor(t *testing.T) {
	l := New[int](8, Block)
	r := l.ReaderFrom(0)
	appendN(t, l, 0, 8, true)
	for i := 0; i < 8; i++ {
		if it, ok := r.Next(nil); !ok || it.Value != i {
			t.Fatalf("read %d: %+v ok=%v", i, it, ok)
		}
	}
	if got := r.Ack(3); got != 3 {
		t.Fatalf("Ack(3) = %d", got)
	}
	if got := l.AckedSeq(); got != 3 {
		t.Fatalf("AckedSeq = %d, want 3", got)
	}
	// Floor is now 4, not the cursor (8): exactly four entries may be
	// evicted before the writer must wait.
	appendN(t, l, 8, 4, true)
	stored := make(chan bool)
	go func() { stored <- l.Append(12, true, nil) }()
	select {
	case <-stored:
		t.Fatal("append evicted a read-but-unacked entry")
	case <-time.After(20 * time.Millisecond):
	}
	if got := r.Ack(7); got != 7 {
		t.Fatalf("Ack(7) = %d", got)
	}
	if !<-stored {
		t.Fatal("append failed after ack freed the floor")
	}
	r.Detach()
}

// An acking reader parks its acknowledged position on detach, and an
// out-of-band Log.Ack lowers the floor below a parked cursor — both
// sides of exact resume-after-crash.
func TestLogAckParksAckedFloor(t *testing.T) {
	l := New[int](8, Block)
	r := l.ReaderFrom(0)
	appendN(t, l, 0, 8, true)
	for i := 0; i < 8; i++ {
		r.Next(nil)
	}
	r.Ack(5)
	r.Detach() // parks 6 (one past the ack), not the cursor 8
	// Six more entries may land (evicting acked 0..5, blocking on 6).
	appendN(t, l, 8, 6, true)
	stored := make(chan bool)
	go func() { stored <- l.Append(14, true, nil) }()
	select {
	case <-stored:
		t.Fatal("append evicted an unacked parked entry")
	case <-time.After(20 * time.Millisecond):
	}
	// The consumer acks out of band (no reader attached) and the writer
	// resumes.
	if got := l.Ack(6); got != 6 {
		t.Fatalf("Log.Ack(6) = %d", got)
	}
	if !<-stored {
		t.Fatal("append failed after out-of-band ack")
	}
}

// A pager reads history without parking the retention floor on detach.
func TestLogPagerDoesNotPark(t *testing.T) {
	l := New[int](8, Block)
	r := l.ReaderFrom(0)
	appendN(t, l, 0, 8, true)
	for i := 0; i < 8; i++ {
		r.Next(nil)
	}
	r.Detach() // parks 8
	p := l.PagerFrom(0)
	for i := 0; i < 3; i++ {
		if it, ok := p.Next(nil); !ok || it.Value != i {
			t.Fatalf("pager read %d: %+v ok=%v", i, it, ok)
		}
	}
	p.Detach() // must not park 3
	// The floor is still the real reader's parked 8, so a full ring of
	// appends proceeds without blocking.
	appendN(t, l, 8, 8, true)
}

// ParsePolicy resolves every published name and rejects junk.
func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"":                      Block,
		"block":                 Block,
		"drop-oldest":           DropOldest,
		"sample-under-pressure": Sample,
	} {
		got, ok := ParsePolicy(in)
		if !ok || got != want {
			t.Fatalf("ParsePolicy(%q) = %v %v", in, got, ok)
		}
	}
	if _, ok := ParsePolicy("nonsense"); ok {
		t.Fatal("accepted junk policy")
	}
}
