package rlog

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// segFiles lists the spill directory's segment files in sequence order.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, spillSegPrefix+"*"+spillSegSuffix))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no segment files on disk")
	}
	return names
}

// A partial final line — a crash mid-append — is skipped on reopen
// without corrupting earlier entries' offsets, in an unrotated (single
// segment) spill.
func TestFileSpillCrashRecoveryUnrotated(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSpill[int](dir, SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(int64(i), i*7); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash simulation: a partial line lands at the tail of the one
	// segment, without its newline.
	files := segFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d segment files, want 1", len(files))
	}
	f, err := os.OpenFile(files[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"v"`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewFileSpill[int](dir, SpillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Entries(); got != 10 {
		t.Fatalf("recovered %d entries, want 10", got)
	}
	for i := 0; i < 10; i++ {
		v, ok := r.Read(int64(i))
		if !ok || v != i*7 {
			t.Fatalf("Read(%d) = %d, %v; want %d", i, v, ok, i*7)
		}
	}
	if _, ok := r.Read(99); ok {
		t.Fatal("truncated tail entry served")
	}
	// Recovered segments are sealed: the next append starts fresh and is
	// readable alongside the recovered history.
	if err := r.Append(10, 70); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if v, ok := r.Read(10); !ok || v != 70 {
		t.Fatalf("Read(10) after recovery = %d, %v", v, ok)
	}
	if got := r.Segments(); got != 2 {
		t.Fatalf("%d segments after post-recovery append, want 2", got)
	}
}

// The same truncated-tail recovery across rotated segments: only the
// final segment's partial line is lost; every sealed segment and the
// final segment's earlier lines stay readable.
func TestFileSpillCrashRecoveryRotated(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSpill[int](dir, SpillConfig{SegmentBytes: 64, RetainBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if err := s.Append(int64(i), i); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files := segFiles(t, dir)
	if len(files) < 2 {
		t.Fatalf("%d segment files, want rotation to have produced several", len(files))
	}
	last := files[len(files)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-line: the final entry loses its newline and tail bytes.
	if err := os.Truncate(last, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	r, err := NewFileSpill[int](dir, SpillConfig{SegmentBytes: 64, RetainBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Entries(); got != 10 {
		t.Fatalf("recovered %d entries, want 10 (final line truncated)", got)
	}
	for i := 0; i < 10; i++ {
		v, ok := r.Read(int64(i))
		if !ok || v != i {
			t.Fatalf("Read(%d) = %d, %v; want %d", i, v, ok, i)
		}
	}
	if _, ok := r.Read(10); ok {
		t.Fatal("truncated entry 10 served")
	}
	if nxt, ok := r.NextRetained(10); ok {
		t.Fatalf("NextRetained(10) = %d, want none", nxt)
	}
	if err := r.Append(11, 11); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if v, ok := r.Read(11); !ok || v != 11 {
		t.Fatalf("Read(11) after recovery = %d, %v", v, ok)
	}
}

// Rotation plus retention budget: with nothing pinned by the floor the
// spill stays within RetainBytes by collecting whole old segments, and
// the retained window stays contiguous.
func TestFileSpillBudgetGC(t *testing.T) {
	s, err := NewFileSpill[int](t.TempDir(), SpillConfig{SegmentBytes: 64, RetainBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetFloor(func() int64 { return 1 << 60 }) // nothing pinned
	for i := 0; i < 32; i++ {
		if err := s.Append(int64(i), i); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := s.SizeBytes(); got > 200 {
		t.Fatalf("spill size %d exceeds 200-byte budget", got)
	}
	low, ok := s.FirstRetained()
	if !ok || low <= 0 {
		t.Fatalf("first retained %d ok=%v, want GC to have pruned a prefix", low, ok)
	}
	if _, ok := s.Read(low - 1); ok {
		t.Fatalf("Read(%d) below the retained window succeeded", low-1)
	}
	if nxt, ok := s.NextRetained(0); !ok || nxt != low {
		t.Fatalf("NextRetained(0) = %d, %v; want %d", nxt, ok, low)
	}
	for i := low; i < 32; i++ {
		if v, ok := s.Read(i); !ok || int64(v) != i {
			t.Fatalf("Read(%d) = %d, %v", i, v, ok)
		}
	}
}

// When the floor pins every sealed segment, an over-budget append is
// refused with ErrSpillFull instead of discarding pinned history; once
// the floor advances, appends resume and the refused sequence surfaces
// as a hole NextRetained skips past.
func TestFileSpillFullAndHoles(t *testing.T) {
	s, err := NewFileSpill[int](t.TempDir(), SpillConfig{SegmentBytes: 64, RetainBytes: 80})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var floor int64
	s.SetFloor(func() int64 { return floor })
	// Four 16-byte lines fill segment one; seq 4 rotates onto a second,
	// bringing the directory to the 80-byte budget.
	for i := 0; i < 5; i++ {
		if err := s.Append(int64(i), i); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Append(5, 5); !errors.Is(err, ErrSpillFull) {
		t.Fatalf("append over pinned budget: %v, want ErrSpillFull", err)
	}
	if got := s.Entries(); got != 5 {
		t.Fatalf("refused append changed entries: %d", got)
	}
	// The consumer acks through 4: segment one (seqs 0..3) becomes
	// collectable and a later sequence fits — seq 5 was already lost
	// upstream, so 6 arrives next, leaving a hole.
	floor = 5
	if err := s.Append(6, 6); err != nil {
		t.Fatalf("append after floor advance: %v", err)
	}
	if _, ok := s.Read(5); ok {
		t.Fatal("hole sequence 5 served")
	}
	if nxt, ok := s.NextRetained(5); !ok || nxt != 6 {
		t.Fatalf("NextRetained(5) = %d, %v; want 6", nxt, ok)
	}
	if v, ok := s.Read(4); !ok || v != 4 {
		t.Fatalf("Read(4) = %d, %v", v, ok)
	}
	if v, ok := s.Read(6); !ok || v != 6 {
		t.Fatalf("Read(6) = %d, %v", v, ok)
	}
}
