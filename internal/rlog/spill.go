package rlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vmq/internal/fault"
)

// ErrSpillFull reports that appending would exceed the spill's
// retention budget and no segment below the retain floor can be
// collected to make room. The Log falls back to its delivery policy for
// the refused entry: a Block writer waits for the floor to advance, a
// DropOldest/Sample writer counts the entry dropped.
var ErrSpillFull = errors.New("rlog: spill retention budget full")

// SpillConfig tunes a FileSpill's rotation and retention.
type SpillConfig struct {
	// SegmentBytes rotates the active segment once appending would grow
	// it past this size (default 4MB). Smaller segments mean finer
	// garbage-collection granularity at the cost of more files.
	SegmentBytes int64
	// SegmentAge, when positive, also rotates a non-empty active
	// segment older than this — so a slow stream's history still breaks
	// into collectable units instead of one ever-open file.
	SegmentAge time.Duration
	// RetainBytes caps the spill's total on-disk footprint (default
	// 64MB; negative = unbounded). When an append would exceed it,
	// whole sealed segments entirely below the retain floor are removed
	// oldest-first; if nothing below the floor can go, the append is
	// refused with ErrSpillFull.
	RetainBytes int64
	// Durable flushes the active segment's buffered writer after every
	// append, so an entry acknowledged to the Log survives a process
	// kill (the bytes are in the OS page cache, beyond the dying
	// process's reach). Segment seals additionally fsync, covering
	// power loss at rotation boundaries. The crash-safe server arms
	// this for every spill under its StateDir; ad-hoc spills keep the
	// cheaper buffered default.
	Durable bool
}

func (c SpillConfig) withDefaults() SpillConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.RetainBytes == 0 {
		c.RetainBytes = 64 << 20
	}
	return c
}

// FileSpill is a file-backed Spill: evicted entries are appended to
// NDJSON segment files ({"seq":n,"v":...} per line) in one directory
// and served back by sequence number through per-segment offset
// indexes. Segments rotate by size (and optionally age), and the
// directory's total footprint is garbage-collected against a retention
// budget — but never past the retain floor the Log provides, so an
// attached or acknowledging consumer's resumable window is kept intact.
//
// Reopening an existing directory recovers the segment indexes from
// the files themselves; a final line truncated by a crash mid-write is
// detected and skipped without disturbing earlier entries' offsets, and
// recovered segments are sealed so new appends go to a fresh segment.
type FileSpill[T any] struct {
	mu     sync.Mutex
	dir    string
	cfg    SpillConfig
	floor  func() int64 // GC floor callback; nil = nothing pinned
	segs   []*spillSegment
	closed bool
}

// spillSegment is one NDJSON file: its open handle, byte size, the
// inclusive sequence range it holds, and the offset index. The last
// segment may be active (w non-nil); all others are sealed.
type spillSegment struct {
	path  string
	f     *os.File
	w     *bufio.Writer // non-nil while the segment accepts appends
	size  int64
	first int64 // lowest indexed seq, -1 when empty
	last  int64 // highest indexed seq, -1 when empty
	torn  bool  // a failed write may have left a partial line
	index []spillEntry
	birth time.Time
}

// spillEntry maps one sequence to the byte offset of its line.
type spillEntry struct {
	seq int64
	off int64
}

// spillLine is the on-disk form of one entry.
type spillLine[T any] struct {
	Seq int64 `json:"seq"`
	V   T     `json:"v"`
}

const (
	spillSegPrefix = "seg-"
	spillSegSuffix = ".ndjson"
)

// NewFileSpill opens (creating if needed) the spill directory at dir.
// Existing segment files are recovered and sealed: their indexes are
// rebuilt line by line, and a partial final line — a crash mid-append —
// is skipped without corrupting earlier offsets. New appends start a
// fresh segment.
func NewFileSpill[T any](dir string, cfg SpillConfig) (*FileSpill[T], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rlog: spill: %w", err)
	}
	s := &FileSpill[T]{dir: dir, cfg: cfg.withDefaults()}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("rlog: spill: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, spillSegPrefix) && strings.HasSuffix(n, spillSegSuffix) {
			names = append(names, n)
		}
	}
	// Names embed the zero-padded first sequence, so lexicographic order
	// is sequence order.
	sort.Strings(names)
	for _, n := range names {
		seg, err := recoverSegment[T](filepath.Join(dir, n))
		if err != nil {
			for _, sg := range s.segs {
				_ = sg.f.Close()
			}
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	return s, nil
}

// recoverSegment rebuilds a sealed segment's index from its file. Lines
// are trusted only when complete (newline-terminated) and well-formed;
// a truncated final line is skipped, as is any line whose sequence does
// not advance (offsets of intact lines are unaffected either way).
func recoverSegment[T any](path string) (*spillSegment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rlog: spill: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("rlog: spill: %w", err)
	}
	seg := &spillSegment{path: path, f: f, size: st.Size(), first: -1, last: -1, birth: time.Now()}
	br := bufio.NewReader(io.NewSectionReader(f, 0, st.Size()))
	var off int64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// EOF with a partial line: the crash-truncated tail. It is
			// not indexed; its bytes still count toward the segment size
			// already taken from Stat.
			break
		}
		var sl spillLine[T]
		if json.Unmarshal(line, &sl) == nil && sl.Seq > seg.last {
			if seg.first < 0 {
				seg.first = sl.Seq
			}
			seg.last = sl.Seq
			seg.index = append(seg.index, spillEntry{seq: sl.Seq, off: off})
		}
		off += int64(len(line))
	}
	return seg, nil
}

// SetFloor installs the retain-floor callback. The Log wires this up
// when the spill is attached (SetSpill); garbage collection asks it for
// the lowest sequence that must survive. The callback is invoked with
// the spill's lock held and may take the log's own lock — the Log never
// calls into the spill while holding it.
func (s *FileSpill[T]) SetFloor(floor func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.floor = floor
}

// Append implements Spill: rotate if due, garbage-collect into the
// retention budget, refuse with ErrSpillFull when the budget is held by
// segments the floor pins, else write and index the entry.
func (s *FileSpill[T]) Append(seq int64, v T) error {
	line, err := json.Marshal(spillLine[T]{Seq: seq, V: v})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("rlog: spill closed")
	}
	if n := len(s.segs); n > 0 && s.segs[n-1].last >= seq {
		return fmt.Errorf("rlog: spill append out of order: seq %d not after %d", seq, s.segs[n-1].last)
	}
	// Fault site for chaos tests: "error" refuses cleanly before any
	// bytes move; "short" falls through and deliberately truncates the
	// write, exercising the torn-line recovery below.
	var tornInject bool
	if ferr := fault.Hit("rlog.spill.append"); ferr != nil {
		if !errors.Is(ferr, fault.ErrShort) {
			return ferr
		}
		tornInject = true
	}
	active := s.activeLocked()
	if active != nil && s.rotateDueLocked(active, int64(len(line))) {
		if err := sealSegment(active); err != nil {
			return err
		}
	}
	if s.cfg.RetainBytes > 0 {
		for s.totalLocked()+int64(len(line)) > s.cfg.RetainBytes && s.gcOldestLocked() {
		}
		if s.totalLocked()+int64(len(line)) > s.cfg.RetainBytes {
			return ErrSpillFull
		}
	}
	active = s.activeLocked()
	if active == nil {
		active, err = s.newSegmentLocked(seq)
		if err != nil {
			return err
		}
	}
	// Write first, index only on a fully-written line: an entry indexed
	// before its bytes land would serve missing or garbled data on
	// error. size still advances by the partial count so later entries'
	// offsets stay correct past any truncated line (which is simply not
	// indexed — exactly what recovery does for a crash-truncated tail).
	if active.torn {
		// A failed write may have left a partial line: terminate it so
		// the garbage parses as one skippable line instead of fusing
		// with (and swallowing) the next good entry on recovery.
		if _, err := active.w.Write([]byte{'\n'}); err != nil {
			return err
		}
		active.size++
		active.torn = false
	}
	off := active.size
	if tornInject {
		n, _ := active.w.Write(line[:len(line)/2])
		active.size += int64(n)
		active.torn = true
		if s.cfg.Durable {
			_ = active.w.Flush()
		}
		return io.ErrShortWrite
	}
	n, err := active.w.Write(line)
	active.size += int64(n)
	if err == nil && n < len(line) {
		err = io.ErrShortWrite
	}
	if err != nil {
		active.torn = true
		return err
	}
	if s.cfg.Durable {
		if err := active.w.Flush(); err != nil {
			active.torn = true
			return err
		}
	}
	if active.first < 0 {
		active.first = seq
	}
	active.last = seq
	active.index = append(active.index, spillEntry{seq: seq, off: off})
	return nil
}

// activeLocked returns the writable segment, nil when all are sealed.
func (s *FileSpill[T]) activeLocked() *spillSegment {
	if n := len(s.segs); n > 0 && s.segs[n-1].w != nil {
		return s.segs[n-1]
	}
	return nil
}

func (s *FileSpill[T]) rotateDueLocked(seg *spillSegment, add int64) bool {
	if seg.size == 0 {
		return false
	}
	if seg.size+add > s.cfg.SegmentBytes {
		return true
	}
	return s.cfg.SegmentAge > 0 && time.Since(seg.birth) >= s.cfg.SegmentAge
}

// sealSegment flushes, fsyncs, and freezes the active segment; its
// file stays open for reads until GC or Close. The fsync makes sealed
// history survive power loss, not just process death — once a segment
// rotates out of the write path its bytes are on stable storage.
func sealSegment(seg *spillSegment) error {
	if seg.w == nil {
		return nil
	}
	if err := seg.w.Flush(); err != nil {
		return err
	}
	seg.w = nil
	return seg.f.Sync()
}

// gcOldestLocked removes the oldest segment when it is sealed and lies
// entirely below the retain floor, reporting whether it did. Removal is
// crash-consistent by construction: the file either survives (and is
// recovered on reopen) or is gone — there is no in-between state, and
// the in-memory drop happens only after the unlink succeeds.
func (s *FileSpill[T]) gcOldestLocked() bool {
	if len(s.segs) == 0 {
		return false
	}
	seg := s.segs[0]
	if seg.w != nil {
		return false // the active segment is never collected
	}
	if seg.last >= 0 && s.floor != nil && seg.last >= s.floor() {
		return false // a consumer could still be served from it
	}
	if err := os.Remove(seg.path); err != nil {
		return false
	}
	_ = seg.f.Close()
	s.segs = s.segs[1:]
	syncDir(s.dir)
	return true
}

// syncDir fsyncs a directory so a just-created or just-removed file's
// directory entry survives power loss. Best-effort: the segment data
// itself is already crash-consistent, this only pins the namespace.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

func (s *FileSpill[T]) totalLocked() int64 {
	var t int64
	for _, seg := range s.segs {
		t += seg.size
	}
	return t
}

func (s *FileSpill[T]) newSegmentLocked(first int64) (*spillSegment, error) {
	path := filepath.Join(s.dir, fmt.Sprintf("%s%016d%s", spillSegPrefix, first, spillSegSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("rlog: spill: %w", err)
	}
	seg := &spillSegment{path: path, f: f, w: bufio.NewWriter(f), first: -1, last: -1, birth: time.Now()}
	s.segs = append(s.segs, seg)
	syncDir(s.dir)
	return seg, nil
}

// Read implements Spill.
func (s *FileSpill[T]) Read(seq int64) (T, bool) {
	var zero T
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return zero, false
	}
	seg := s.segmentForLocked(seq)
	if seg == nil {
		return zero, false
	}
	i := sort.Search(len(seg.index), func(i int) bool { return seg.index[i].seq >= seq })
	if i >= len(seg.index) || seg.index[i].seq != seq {
		return zero, false
	}
	if seg.w != nil {
		if err := seg.w.Flush(); err != nil {
			return zero, false
		}
	}
	off := seg.index[i].off
	end := seg.size
	if i+1 < len(seg.index) {
		end = seg.index[i+1].off
	}
	// Reads are rare (a consumer resuming from far behind), so a
	// positioned re-read beats keeping every line in memory.
	rd := bufio.NewReader(io.NewSectionReader(seg.f, off, end-off))
	line, err := rd.ReadBytes('\n')
	if err != nil {
		return zero, false
	}
	var l spillLine[T]
	if err := json.Unmarshal(line, &l); err != nil || l.Seq != seq {
		return zero, false
	}
	return l.V, true
}

// segmentForLocked finds the segment whose range covers seq.
func (s *FileSpill[T]) segmentForLocked(seq int64) *spillSegment {
	for _, seg := range s.segs {
		if seg.first >= 0 && seg.first <= seq && seq <= seg.last {
			return seg
		}
	}
	return nil
}

// NextRetained implements Spill: the lowest indexed sequence >= seq.
func (s *FileSpill[T]) NextRetained(seq int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, false
	}
	for _, seg := range s.segs {
		if seg.last < seq {
			continue
		}
		i := sort.Search(len(seg.index), func(i int) bool { return seg.index[i].seq >= seq })
		if i < len(seg.index) {
			return seg.index[i].seq, true
		}
	}
	return 0, false
}

// LastRetained returns the newest sequence the spill holds (false when
// empty or closed) — the recovery high-water mark: a log resuming over
// this spill restarts its sequence numbering one past it.
func (s *FileSpill[T]) LastRetained() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, false
	}
	for i := len(s.segs) - 1; i >= 0; i-- {
		if s.segs[i].last >= 0 {
			return s.segs[i].last, true
		}
	}
	return 0, false
}

// FirstRetained returns the oldest sequence the spill still holds
// (false when empty or closed).
func (s *FileSpill[T]) FirstRetained() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, false
	}
	for _, seg := range s.segs {
		if seg.first >= 0 {
			return seg.first, true
		}
	}
	return 0, false
}

// Entries returns how many entries the indexes currently serve.
func (s *FileSpill[T]) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.segs {
		n += len(seg.index)
	}
	return n
}

// Segments returns how many segment files the spill holds.
func (s *FileSpill[T]) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// SizeBytes returns the spill's total on-disk footprint.
func (s *FileSpill[T]) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalLocked()
}

// Close flushes and closes every segment file. Reads and appends fail
// afterwards; the files stay on disk for a later reopen.
func (s *FileSpill[T]) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	for _, seg := range s.segs {
		if seg.w != nil {
			if ferr := seg.w.Flush(); err == nil {
				err = ferr
			}
			seg.w = nil
			if s.cfg.Durable {
				if serr := seg.f.Sync(); err == nil {
					err = serr
				}
			}
		}
		if cerr := seg.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
