package rlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileSpill is a file-backed Spill: evicted entries are appended to one
// NDJSON file ({"seq":n,"v":...} per line) and served back by sequence
// number through an in-memory offset index. It extends a query's
// resumable window beyond the ring for as long as the file is kept —
// an operator reviewing what a disconnected dashboard missed, or a test
// asserting on a full delivery history.
//
// The spill retains at most maxEntries index entries (FIFO); reads below
// the retained window miss, which the Log reports as a gap. The file
// itself is append-only — rotation is the operator's concern, the index
// is the bounded part.
type FileSpill[T any] struct {
	mu         sync.Mutex
	f          *os.File
	w          *bufio.Writer
	offsets    map[int64]int64 // seq -> byte offset of its line
	order      []int64         // FIFO eviction of the index
	maxEntries int
	pos        int64
}

// spillLine is the on-disk form of one entry.
type spillLine[T any] struct {
	Seq int64 `json:"seq"`
	V   T     `json:"v"`
}

// NewFileSpill creates (truncating) the spill file at path, indexing at
// most maxEntries entries (<= 0 selects 65536).
func NewFileSpill[T any](path string, maxEntries int) (*FileSpill[T], error) {
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("rlog: spill: %w", err)
	}
	return &FileSpill[T]{
		f:          f,
		w:          bufio.NewWriter(f),
		offsets:    make(map[int64]int64),
		maxEntries: maxEntries,
	}, nil
}

// Append implements Spill.
func (s *FileSpill[T]) Append(seq int64, v T) error {
	line, err := json.Marshal(spillLine[T]{Seq: seq, V: v})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("rlog: spill closed")
	}
	// Write first, index only on a fully-written line: an entry indexed
	// before its bytes land would serve missing or garbled data on error.
	// pos still advances by the partial count so later entries' offsets
	// stay correct past any truncated line (which is simply not indexed).
	off := s.pos
	n, err := s.w.Write(line)
	s.pos += int64(n)
	if err == nil && n < len(line) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return err
	}
	s.offsets[seq] = off
	s.order = append(s.order, seq)
	for len(s.order) > s.maxEntries {
		delete(s.offsets, s.order[0])
		s.order = s.order[1:]
	}
	return nil
}

// Read implements Spill.
func (s *FileSpill[T]) Read(seq int64) (T, bool) {
	var zero T
	s.mu.Lock()
	defer s.mu.Unlock()
	off, ok := s.offsets[seq]
	if !ok || s.f == nil {
		return zero, false
	}
	if err := s.w.Flush(); err != nil {
		return zero, false
	}
	// Reads are rare (a consumer resuming from far behind), so a
	// positioned re-read beats keeping every line in memory.
	rd := bufio.NewReader(io.NewSectionReader(s.f, off, s.pos-off))
	line, err := rd.ReadBytes('\n')
	if err != nil {
		return zero, false
	}
	var l spillLine[T]
	if err := json.Unmarshal(line, &l); err != nil || l.Seq != seq {
		return zero, false
	}
	return l.V, true
}

// FirstRetained implements Spill: the oldest indexed sequence. A closed
// spill retains nothing — Read always misses then, and reporting a
// retained floor anyway would make a reader emit two gaps (one to the
// phantom floor, one past it) for a single evicted range.
func (s *FileSpill[T]) FirstRetained() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) == 0 || s.f == nil {
		return 0, false
	}
	return s.order[0], true
}

// Entries returns how many entries the index currently serves.
func (s *FileSpill[T]) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.offsets)
}

// Close flushes and closes the file. Reads and appends fail afterwards.
func (s *FileSpill[T]) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
