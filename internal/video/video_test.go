package video

import (
	"math"
	"testing"
	"time"

	"vmq/internal/tensor"
)

func TestClassAndColorParsing(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("unicorn"); ok {
		t.Error("ParseClass accepted unknown class")
	}
	for c := Color(0); c < numColors; c++ {
		got, ok := ParseColor(c.String())
		if !ok || got != c {
			t.Errorf("ParseColor(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseColor("octarine"); ok {
		t.Error("ParseColor accepted unknown colour")
	}
	if Class(99).String() == "" || Color(99).String() == "" {
		t.Error("unknown String empty")
	}
	r, g, b := Red.RGB()
	if r <= g || r <= b {
		t.Error("Red.RGB not red-dominant")
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(Jackson(), 42)
	b := NewStream(Jackson(), 42)
	for i := 0; i < 50; i++ {
		fa, fb := a.Next(), b.Next()
		if fa.Count() != fb.Count() {
			t.Fatalf("frame %d count differs: %d vs %d", i, fa.Count(), fb.Count())
		}
		for j := range fa.Objects {
			if fa.Objects[j] != fb.Objects[j] {
				t.Fatalf("frame %d object %d differs", i, j)
			}
		}
	}
	c := NewStream(Jackson(), 43)
	same := true
	for i := 0; i < 50 && same; i++ {
		fa, fc := a.Next(), c.Next()
		if fa.Count() != fc.Count() {
			same = false
			break
		}
		for j := range fa.Objects {
			if fa.Objects[j].Box != fc.Objects[j].Box {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical object sequences")
	}
}

func TestStreamMatchesTableII(t *testing.T) {
	cases := []struct {
		profile Profile
		meanTol float64
		stdTol  float64
	}{
		{Coral(), 1.0, 1.3},
		{Jackson(), 0.3, 0.3},
		{Detrac(), 2.0, 2.5},
	}
	for _, c := range cases {
		t.Run(c.profile.Name, func(t *testing.T) {
			s := NewStream(c.profile, 7)
			const n = 6000
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				f := s.Next()
				// Static objects are scene furniture, excluded from the
				// Table II count statistics.
				cnt := float64(f.Count() - len(c.profile.Static))
				sum += cnt
				sumSq += cnt * cnt
			}
			mean := sum / n
			std := math.Sqrt(sumSq/n - mean*mean)
			if math.Abs(mean-c.profile.MeanObjs) > c.meanTol {
				t.Errorf("mean obj/frame = %.2f, want %.2f±%.1f", mean, c.profile.MeanObjs, c.meanTol)
			}
			if math.Abs(std-c.profile.StdObjs) > c.stdTol {
				t.Errorf("std obj/frame = %.2f, want %.2f±%.1f", std, c.profile.StdObjs, c.stdTol)
			}
		})
	}
}

func TestClassMixMatchesProfile(t *testing.T) {
	p := Detrac()
	s := NewStream(p, 11)
	counts := map[Class]int{}
	total := 0
	for i := 0; i < 3000; i++ {
		f := s.Next()
		for _, o := range f.Objects {
			counts[o.Class]++
			total++
		}
	}
	for _, cm := range p.Classes {
		got := float64(counts[cm.Class]) / float64(total)
		if math.Abs(got-cm.P) > 0.05 {
			t.Errorf("class %v frequency = %.3f, want %.3f", cm.Class, got, cm.P)
		}
	}
}

func TestObjectsStayRoughlyInBounds(t *testing.T) {
	p := Coral()
	s := NewStream(p, 3)
	bounds := p.Bounds()
	for i := 0; i < 500; i++ {
		f := s.Next()
		for _, o := range f.Objects {
			c := o.Box.Center()
			if c.X < bounds.X0-50 || c.X > bounds.X1+50 || c.Y < bounds.Y0-50 || c.Y > bounds.Y1+50 {
				t.Fatalf("frame %d: object far out of bounds: %v", i, o)
			}
		}
	}
}

func TestTrackIDsStableAndUnique(t *testing.T) {
	s := NewStream(Jackson(), 5)
	seen := map[int]Class{}
	for i := 0; i < 300; i++ {
		f := s.Next()
		ids := map[int]bool{}
		for _, o := range f.Objects {
			if o.TrackID < 0 {
				continue // static furniture
			}
			if ids[o.TrackID] {
				t.Fatalf("frame %d: duplicate track id %d", i, o.TrackID)
			}
			ids[o.TrackID] = true
			if cls, ok := seen[o.TrackID]; ok && cls != o.Class {
				t.Fatalf("track %d changed class %v -> %v", o.TrackID, cls, o.Class)
			}
			seen[o.TrackID] = o.Class
		}
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct tracks over 300 frames", len(seen))
	}
}

func TestFrameHelpers(t *testing.T) {
	s := NewStream(Jackson(), 9)
	var f *Frame
	for i := 0; i < 200; i++ {
		f = s.Next()
		if f.CountClass(Car) > 0 {
			break
		}
	}
	if f.CountClass(Car) == 0 {
		t.Skip("no car appeared in 200 frames (unexpected)")
	}
	hist := f.ClassHistogram()
	if hist[Car] != f.CountClass(Car) {
		t.Error("histogram disagrees with CountClass")
	}
	if len(f.ObjectsOfClass(Car)) != f.CountClass(Car) {
		t.Error("ObjectsOfClass length disagrees")
	}
	if f.CountClassColor(Car, AnyColor) != f.CountClass(Car) {
		t.Error("AnyColor should match every colour")
	}
	sum := 0
	for col := Color(1); col < numColors; col++ {
		sum += f.CountClassColor(Car, col)
	}
	if sum != f.CountClass(Car) {
		t.Error("colour counts do not partition class count")
	}
}

func TestStaticObjectsAlwaysPresent(t *testing.T) {
	p := Jackson()
	s := NewStream(p, 1)
	for i := 0; i < 100; i++ {
		f := s.Next()
		if f.CountClass(StopSign) != 1 {
			t.Fatalf("frame %d: stop sign missing", i)
		}
	}
}

func TestTake(t *testing.T) {
	s := NewStream(Jackson(), 2)
	fs := s.Take(10)
	if len(fs) != 10 {
		t.Fatalf("Take returned %d frames", len(fs))
	}
	for i, f := range fs {
		if f.Index != i {
			t.Fatalf("frame %d has index %d", i, f.Index)
		}
	}
}

func TestRender(t *testing.T) {
	s := NewStream(Jackson(), 4)
	f := s.Next()
	img := Render(f, 64, 64, 1)
	if img.Shape[0] != 3 || img.Shape[1] != 64 || img.Shape[2] != 64 {
		t.Fatalf("Render shape %v", img.Shape)
	}
	for _, v := range img.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of range: %v", v)
		}
	}
	// Deterministic given identical seed.
	img2 := Render(f, 64, 64, 1)
	for i := range img.Data {
		if img.Data[i] != img2.Data[i] {
			t.Fatal("Render not deterministic")
		}
	}
	// Frames with objects should differ from an empty render.
	empty := &Frame{CameraID: "x", Index: f.Index, Bounds: f.Bounds}
	img3 := Render(empty, 64, 64, 1)
	diff := 0.0
	for i := range img.Data {
		diff += math.Abs(float64(img.Data[i] - img3.Data[i]))
	}
	if diff < 1 {
		t.Error("rendered objects indistinguishable from empty frame")
	}
}

func TestFrameTimeConversions(t *testing.T) {
	p := Jackson() // 30 fps
	if got := p.FramesIn(10 * time.Minute); got != 18000 {
		t.Fatalf("FramesIn(10m) = %d, want 18000", got)
	}
	if got := p.DurationOf(18000); got != 10*time.Minute {
		t.Fatalf("DurationOf(18000) = %v, want 10m", got)
	}
	if got := p.DurationOf(p.FramesIn(7 * time.Second)); got != 7*time.Second {
		t.Fatalf("roundtrip = %v", got)
	}
	var zero Profile
	if zero.DurationOf(100) != 0 {
		t.Fatal("zero-FPS DurationOf not 0")
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles() {
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("ProfileByName(%q) failed", p.Name)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ProfileByName accepted unknown name")
	}
}

// RenderBatchInto must produce bytes identical to sequential RenderInto
// calls for every worker count: frames own disjoint slabs and each noise
// stream is keyed by (frame index, noiseSeed) alone, so parallel
// rasterisation cannot perturb a single pixel.
func TestRenderBatchIntoDeterministicAcrossWorkers(t *testing.T) {
	s := NewStream(Jackson(), 4)
	frames := make([]*Frame, 13) // odd count: exercises uneven worker splits
	for i := range frames {
		frames[i] = s.Next()
	}
	const img = 32
	slab := 3 * img * img
	want := make([]float32, len(frames)*slab)
	view := tensor.Tensor{Shape: []int{3, img, img}}
	for i, f := range frames {
		view.Data = want[i*slab : (i+1)*slab]
		RenderInto(&view, f, 7)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 32} {
		batch := tensor.New(len(frames), 3, img, img)
		batch.Fill(999) // dirty buffer: every pixel must be overwritten
		RenderBatchInto(batch, frames, 7, workers)
		for i := range want {
			if math.Float32bits(batch.Data[i]) != math.Float32bits(want[i]) {
				t.Fatalf("workers=%d: pixel %d = %v, want %v", workers, i, batch.Data[i], want[i])
			}
		}
	}
	// A larger batch tensor than the frame set is allowed (coalesced
	// buffers carry headroom); the extra slabs stay untouched.
	big := tensor.New(len(frames)+3, 3, img, img)
	big.Fill(-5)
	RenderBatchInto(big, frames, 7, 4)
	for i := len(frames) * slab; i < len(big.Data); i++ {
		if big.Data[i] != -5 {
			t.Fatal("RenderBatchInto wrote past the frame set's slabs")
		}
	}
}

// Rendered bytes must not depend on the selected kernel level: the row
// fills are pure stores and the noise epilogue is a bit-exact select
// chain on every non-tolerant level.
func TestRenderBitIdenticalAcrossKernels(t *testing.T) {
	s := NewStream(Jackson(), 4)
	f := s.Next()
	prev := tensor.Kernel()
	defer tensor.SetKernel(prev)
	var want []float32
	for _, name := range tensor.Kernels() {
		if err := tensor.SetKernel(name); err != nil {
			t.Fatal(err)
		}
		img := Render(f, 33, 47, 3) // odd sizes: every row hits a lane tail
		if want == nil {
			want = img.Data
			continue
		}
		for i := range want {
			if math.Float32bits(img.Data[i]) != math.Float32bits(want[i]) {
				t.Fatalf("kernel %s: pixel %d = %v, want %v", name, i, img.Data[i], want[i])
			}
		}
	}
}
