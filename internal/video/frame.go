package video

import (
	"fmt"

	"vmq/internal/geom"
)

// Object is one ground-truth object instance in a frame.
type Object struct {
	// TrackID is stable while the object remains in the scene, assigned by
	// the simulator (the paper's queries use track ids to associate
	// aggregates with the same physical object across frames).
	TrackID int
	Class   Class
	Color   Color
	Box     geom.Rect
	// Vel is the object's velocity in pixels/frame (simulator state,
	// exposed for motion-aware extensions).
	Vel geom.Point
}

// String implements fmt.Stringer.
func (o Object) String() string {
	return fmt.Sprintf("%s#%d(%s)@%v", o.Class, o.TrackID, o.Color, o.Box)
}

// Frame is one video frame: ground truth plus metadata. Pixels are
// rasterised on demand (see Render) so that experiments which only need
// the schema do not pay for drawing.
type Frame struct {
	CameraID string
	Index    int // frame number within the stream
	Bounds   geom.Rect
	Objects  []Object
}

// Count returns the total number of objects in the frame.
func (f *Frame) Count() int { return len(f.Objects) }

// CountClass returns the number of objects of class c.
func (f *Frame) CountClass(c Class) int {
	n := 0
	for _, o := range f.Objects {
		if o.Class == c {
			n++
		}
	}
	return n
}

// CountClassColor returns the number of objects of class c with colour col
// (AnyColor matches every colour).
func (f *Frame) CountClassColor(c Class, col Color) int {
	n := 0
	for _, o := range f.Objects {
		if o.Class == c && (col == AnyColor || o.Color == col) {
			n++
		}
	}
	return n
}

// ObjectsOfClass returns the objects of class c in frame order.
func (f *Frame) ObjectsOfClass(c Class) []Object {
	var out []Object
	for _, o := range f.Objects {
		if o.Class == c {
			out = append(out, o)
		}
	}
	return out
}

// ClassHistogram returns per-class counts indexed by Class.
func (f *Frame) ClassHistogram() [NumClasses]int {
	var h [NumClasses]int
	for _, o := range f.Objects {
		h[o.Class]++
	}
	return h
}
