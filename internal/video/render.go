package video

import (
	"math/rand/v2"

	"vmq/internal/tensor"
)

// Render rasterises the frame's ground truth into a 3×h×w RGB tensor with
// values in [0,1]. Objects are drawn back-to-front as filled rectangles in
// their attribute colour with a per-class shape cue (people are drawn
// taller with a head blob, vehicles carry a darker window band) so that a
// CNN can discriminate classes, plus mild sensor noise. The rasteriser is
// deterministic in (frame index, noiseSeed).
func Render(f *Frame, h, w int, noiseSeed uint64) *tensor.Tensor {
	return RenderInto(tensor.New(3, h, w), f, noiseSeed)
}

// RenderInto rasterises like Render but into the caller's 3×h×w tensor,
// the allocation-free path the batched filter backends use. Every pixel is
// overwritten (the background fill covers the full frame), so img may be a
// dirty reused buffer. It returns img.
func RenderInto(img *tensor.Tensor, f *Frame, noiseSeed uint64) *tensor.Tensor {
	if img.Rank() != 3 || img.Shape[0] != 3 {
		panic("video: RenderInto needs a 3xHxW tensor")
	}
	h, w := img.Shape[1], img.Shape[2]
	// Background: muted grey with a slight vertical gradient, like asphalt.
	for y := 0; y < h; y++ {
		shade := 0.35 + 0.1*float32(y)/float32(h)
		for x := 0; x < w; x++ {
			img.Data[0*h*w+y*w+x] = shade
			img.Data[1*h*w+y*w+x] = shade
			img.Data[2*h*w+y*w+x] = shade
		}
	}
	sx := float64(w) / f.Bounds.W()
	sy := float64(h) / f.Bounds.H()
	for _, o := range f.Objects {
		drawObject(img, o, sx, sy, h, w)
	}
	// Sensor noise.
	rng := rand.New(rand.NewPCG(noiseSeed, uint64(f.Index)+1))
	for i := range img.Data {
		img.Data[i] += float32(rng.NormFloat64() * 0.02)
		if img.Data[i] < 0 {
			img.Data[i] = 0
		} else if img.Data[i] > 1 {
			img.Data[i] = 1
		}
	}
	return img
}

func drawObject(img *tensor.Tensor, o Object, sx, sy float64, h, w int) {
	r, g, b := o.Color.RGB()
	box := o.Box.Scale(sx, sy)
	x0, y0 := int(box.X0), int(box.Y0)
	x1, y1 := int(box.X1), int(box.Y1)
	fillRect(img, x0, y0, x1, y1, h, w, r, g, b)
	switch o.Class {
	case Person:
		// Head blob: a lighter square on the top fifth.
		hh := (y1 - y0) / 5
		fillRect(img, x0+(x1-x0)/4, y0-hh, x0+3*(x1-x0)/4, y0, h, w, 0.95, 0.85, 0.7)
	case Car, Truck, Bus:
		// Window band on the upper third.
		wy1 := y0 + (y1-y0)/3
		fillRect(img, x0+2, y0+2, x1-2, wy1, h, w, 0.15, 0.2, 0.3)
	case Bicycle:
		// Two dark wheel squares.
		ww := (x1 - x0) / 3
		fillRect(img, x0, y1-ww, x0+ww, y1, h, w, 0.05, 0.05, 0.05)
		fillRect(img, x1-ww, y1-ww, x1, y1, h, w, 0.05, 0.05, 0.05)
	case StopSign:
		// White border band.
		fillRect(img, x0+1, y0+1, x1-1, y0+3, h, w, 0.95, 0.95, 0.95)
	}
}

func fillRect(img *tensor.Tensor, x0, y0, x1, y1, h, w int, r, g, b float32) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			img.Data[0*h*w+y*w+x] = r
			img.Data[1*h*w+y*w+x] = g
			img.Data[2*h*w+y*w+x] = b
		}
	}
}
