package video

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"vmq/internal/tensor"
)

// Render rasterises the frame's ground truth into a 3×h×w RGB tensor with
// values in [0,1]. Objects are drawn back-to-front as filled rectangles in
// their attribute colour with a per-class shape cue (people are drawn
// taller with a head blob, vehicles carry a darker window band) so that a
// CNN can discriminate classes, plus mild sensor noise. The rasteriser is
// deterministic in (frame index, noiseSeed).
func Render(f *Frame, h, w int, noiseSeed uint64) *tensor.Tensor {
	return RenderInto(tensor.New(3, h, w), f, noiseSeed)
}

// noiseChunks recycles the scratch buffers the sensor-noise pass fills
// from each frame's PCG stream before handing them to the dispatched
// add+clamp row kernel, keeping RenderInto allocation-free at steady
// state.
var noiseChunks = sync.Pool{New: func() any {
	buf := make([]float32, 1024)
	return &buf
}}

// RenderInto rasterises like Render but into the caller's 3×h×w tensor,
// the allocation-free path the batched filter backends use. Every pixel is
// overwritten (the background fill covers the full frame), so img may be a
// dirty reused buffer. It returns img.
//
// The row fills and the sensor-noise epilogue route through the tensor
// package's dispatched row kernels (Fill, AddClamp01). Those are
// bit-identical across every non-tolerant kernel level, and the noise pass
// consumes the per-frame PCG stream in pixel order and applies
// add/clamp-low/clamp-high in the scalar loop's IEEE order, so rendered
// bytes depend only on (frame index, noiseSeed) — never on the machine or
// the selected kernel.
func RenderInto(img *tensor.Tensor, f *Frame, noiseSeed uint64) *tensor.Tensor {
	if img.Rank() != 3 || img.Shape[0] != 3 {
		panic("video: RenderInto needs a 3xHxW tensor")
	}
	h, w := img.Shape[1], img.Shape[2]
	// Background: muted grey with a slight vertical gradient, like asphalt.
	for y := 0; y < h; y++ {
		shade := 0.35 + 0.1*float32(y)/float32(h)
		row := y * w
		tensor.Fill(img.Data[row:row+w], shade)
		tensor.Fill(img.Data[h*w+row:h*w+row+w], shade)
		tensor.Fill(img.Data[2*h*w+row:2*h*w+row+w], shade)
	}
	sx := float64(w) / f.Bounds.W()
	sy := float64(h) / f.Bounds.H()
	for _, o := range f.Objects {
		drawObject(img, o, sx, sy, h, w)
	}
	// Sensor noise: one Gaussian per pixel, drawn in pixel order from the
	// frame-keyed stream into a chunk buffer, then added and clamped by
	// the row kernel.
	rng := rand.New(rand.NewPCG(noiseSeed, uint64(f.Index)+1))
	chunkp := noiseChunks.Get().(*[]float32)
	noise := *chunkp
	data := img.Data
	for off := 0; off < len(data); off += len(noise) {
		chunk := data[off:]
		if len(chunk) > len(noise) {
			chunk = chunk[:len(noise)]
		}
		for i := range chunk {
			noise[i] = float32(rng.NormFloat64() * 0.02)
		}
		tensor.AddClamp01(chunk, noise[:len(chunk)])
	}
	noiseChunks.Put(chunkp)
	return img
}

// RenderBatchInto rasterises frames[i] into the i'th contiguous 3×H×W slab
// of batch (shape N×3×H×W with N ≥ len(frames)), fanning the frames across
// at most workers goroutines. Each frame writes only its own disjoint slab
// and each frame's noise stream is keyed by (frame index, noiseSeed)
// alone, so the rendered bytes are identical to sequential RenderInto
// calls regardless of worker count or completion order. workers <= 1
// renders inline on the caller's goroutine. It returns batch.
func RenderBatchInto(batch *tensor.Tensor, frames []*Frame, noiseSeed uint64, workers int) *tensor.Tensor {
	if batch.Rank() != 4 || batch.Shape[1] != 3 {
		panic("video: RenderBatchInto needs an Nx3xHxW tensor")
	}
	if batch.Shape[0] < len(frames) {
		panic("video: RenderBatchInto batch is smaller than the frame set")
	}
	h, w := batch.Shape[2], batch.Shape[3]
	slab := 3 * h * w
	if workers > len(frames) {
		workers = len(frames)
	}
	if workers <= 1 {
		view := tensor.Tensor{Shape: []int{3, h, w}}
		for i, f := range frames {
			view.Data = batch.Data[i*slab : (i+1)*slab]
			RenderInto(&view, f, noiseSeed)
		}
		return batch
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			view := tensor.Tensor{Shape: []int{3, h, w}}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(frames) {
					return
				}
				view.Data = batch.Data[i*slab : (i+1)*slab]
				RenderInto(&view, frames[i], noiseSeed)
			}
		}()
	}
	wg.Wait()
	return batch
}

func drawObject(img *tensor.Tensor, o Object, sx, sy float64, h, w int) {
	r, g, b := o.Color.RGB()
	box := o.Box.Scale(sx, sy)
	x0, y0 := int(box.X0), int(box.Y0)
	x1, y1 := int(box.X1), int(box.Y1)
	fillRect(img, x0, y0, x1, y1, h, w, r, g, b)
	switch o.Class {
	case Person:
		// Head blob: a lighter square on the top fifth.
		hh := (y1 - y0) / 5
		fillRect(img, x0+(x1-x0)/4, y0-hh, x0+3*(x1-x0)/4, y0, h, w, 0.95, 0.85, 0.7)
	case Car, Truck, Bus:
		// Window band on the upper third.
		wy1 := y0 + (y1-y0)/3
		fillRect(img, x0+2, y0+2, x1-2, wy1, h, w, 0.15, 0.2, 0.3)
	case Bicycle:
		// Two dark wheel squares.
		ww := (x1 - x0) / 3
		fillRect(img, x0, y1-ww, x0+ww, y1, h, w, 0.05, 0.05, 0.05)
		fillRect(img, x1-ww, y1-ww, x1, y1, h, w, 0.05, 0.05, 0.05)
	case StopSign:
		// White border band.
		fillRect(img, x0+1, y0+1, x1-1, y0+3, h, w, 0.95, 0.95, 0.95)
	}
}

func fillRect(img *tensor.Tensor, x0, y0, x1, y1, h, w int, r, g, b float32) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	if x1 <= x0 {
		return
	}
	for y := y0; y < y1; y++ {
		row := y * w
		tensor.Fill(img.Data[row+x0:row+x1], r)
		tensor.Fill(img.Data[h*w+row+x0:h*w+row+x1], g)
		tensor.Fill(img.Data[2*h*w+row+x0:2*h*w+row+x1], b)
	}
}
