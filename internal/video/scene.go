package video

import (
	"math"
	"math/rand/v2"

	"vmq/internal/geom"
)

// Stream generates frames from a Profile deterministically: the same
// profile and seed always produce the same frame sequence, which keeps
// every experiment reproducible.
type Stream struct {
	Profile Profile

	rng      *rand.Rand
	frameIdx int
	level    float64 // AR(1) state for the target count
	objects  []Object
	nextID   int
}

// NewStream creates a stream over profile seeded with seed. The count
// process starts at its stationary mean.
func NewStream(profile Profile, seed uint64) *Stream {
	s := &Stream{
		Profile: profile,
		rng:     rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		level:   profile.MeanObjs,
	}
	// Warm the scene so frame 0 is already populated and stationary.
	for i := 0; i < 50; i++ {
		s.step()
	}
	s.frameIdx = 0
	return s
}

// Next produces the next frame.
func (s *Stream) Next() *Frame {
	s.step()
	objs := make([]Object, 0, len(s.objects)+len(s.Profile.Static))
	objs = append(objs, s.Profile.Static...)
	objs = append(objs, s.objects...)
	f := &Frame{
		CameraID: s.Profile.Name,
		Index:    s.frameIdx,
		Bounds:   s.Profile.Bounds(),
		Objects:  objs,
	}
	s.frameIdx++
	return f
}

// Take returns the next n frames.
func (s *Stream) Take(n int) []*Frame {
	out := make([]*Frame, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// step advances the simulation by one frame.
func (s *Stream) step() {
	p := s.Profile
	// AR(1) innovation keeping the stationary std at StdObjs.
	sigma := p.StdObjs * math.Sqrt(1-p.Phi*p.Phi)
	s.level = p.MeanObjs + p.Phi*(s.level-p.MeanObjs) + s.rng.NormFloat64()*sigma
	target := int(math.Round(s.level))
	if target < 0 {
		target = 0
	}

	// Advance kinematics; drop objects that left the frame.
	bounds := p.Bounds()
	alive := s.objects[:0]
	for _, o := range s.objects {
		o.Box = o.Box.Translate(o.Vel)
		if p.Motion == Wander {
			// Random-walk steering plus reflection at the walls.
			o.Vel.X += s.rng.NormFloat64() * 0.3
			o.Vel.Y += s.rng.NormFloat64() * 0.3
			o.Vel.X = clamp(o.Vel.X, -3, 3)
			o.Vel.Y = clamp(o.Vel.Y, -3, 3)
			if o.Box.X0 < 0 && o.Vel.X < 0 || o.Box.X1 > bounds.X1 && o.Vel.X > 0 {
				o.Vel.X = -o.Vel.X
			}
			if o.Box.Y0 < 0 && o.Vel.Y < 0 || o.Box.Y1 > bounds.Y1 && o.Vel.Y > 0 {
				o.Vel.Y = -o.Vel.Y
			}
			alive = append(alive, o)
			continue
		}
		// Linear motion: retire once fully outside.
		if o.Box.X1 < bounds.X0-10 || o.Box.X0 > bounds.X1+10 ||
			o.Box.Y1 < bounds.Y0-10 || o.Box.Y0 > bounds.Y1+10 {
			continue
		}
		alive = append(alive, o)
	}
	s.objects = alive

	// Track the target count.
	for len(s.objects) < target {
		s.objects = append(s.objects, s.spawn())
	}
	for len(s.objects) > target {
		i := s.rng.IntN(len(s.objects))
		s.objects[i] = s.objects[len(s.objects)-1]
		s.objects = s.objects[:len(s.objects)-1]
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (s *Stream) spawn() Object {
	p := s.Profile
	cls := s.pickClass()
	col := s.pickColor(cls)
	sz := p.Sizes[cls]
	w := sz.MinW + s.rng.Float64()*(sz.MaxW-sz.MinW)
	h := sz.MinH + s.rng.Float64()*(sz.MaxH-sz.MinH)
	bounds := p.Bounds()

	var box geom.Rect
	var vel geom.Point
	if p.Motion == Wander {
		cx := bounds.X0 + w/2 + s.rng.Float64()*(bounds.W()-w)
		cy := bounds.Y0 + h/2 + s.rng.Float64()*(bounds.H()-h)
		box = geom.RectFromCenter(geom.Point{X: cx, Y: cy}, w, h)
		vel = geom.Point{X: s.rng.NormFloat64(), Y: s.rng.NormFloat64()}
	} else {
		// Enter from the left or right edge, travelling across. Vertical
		// position picks a "lane".
		cy := bounds.Y0 + h/2 + s.rng.Float64()*(bounds.H()-h)
		speed := 2 + s.rng.Float64()*4
		if s.rng.IntN(2) == 0 {
			box = geom.RectFromCenter(geom.Point{X: bounds.X0 + w/2 + s.rng.Float64()*bounds.W()*0.3, Y: cy}, w, h)
			vel = geom.Point{X: speed}
		} else {
			box = geom.RectFromCenter(geom.Point{X: bounds.X1 - w/2 - s.rng.Float64()*bounds.W()*0.3, Y: cy}, w, h)
			vel = geom.Point{X: -speed}
		}
	}
	o := Object{TrackID: s.nextID, Class: cls, Color: col, Box: box, Vel: vel}
	s.nextID++
	return o
}

func (s *Stream) pickClass() Class {
	r := s.rng.Float64()
	acc := 0.0
	for _, cm := range s.Profile.Classes {
		acc += cm.P
		if r < acc {
			return cm.Class
		}
	}
	return s.Profile.Classes[len(s.Profile.Classes)-1].Class
}

func (s *Stream) pickColor(cls Class) Color {
	if cls == Person {
		// People are not colour-attributed in the paper's queries, but the
		// rasteriser still needs a hue.
		mix := s.Profile.Colors
		return mix[s.rng.IntN(len(mix))].Color
	}
	r := s.rng.Float64()
	acc := 0.0
	for _, cm := range s.Profile.Colors {
		acc += cm.P
		if r < acc {
			return cm.Color
		}
	}
	return s.Profile.Colors[len(s.Profile.Colors)-1].Color
}
