package video

import (
	"time"

	"vmq/internal/geom"
)

// ClassMix is a class with its relative frequency in a dataset.
type ClassMix struct {
	Class Class
	P     float64
}

// ColorMix is a colour with its relative frequency among spawned vehicles.
type ColorMix struct {
	Color Color
	P     float64
}

// Motion selects the simulator's kinematic model.
type Motion int

// Motion models.
const (
	// Linear objects enter from a screen edge and cross with roughly
	// constant velocity (traffic cameras: Jackson, Detrac).
	Linear Motion = iota
	// Wander objects drift with a random walk inside the frame (the Coral
	// aquarium camera).
	Wander
)

// SizeRange bounds an object's rasterised width and height in pixels.
type SizeRange struct {
	MinW, MaxW float64
	MinH, MaxH float64
}

// Profile describes a synthetic dataset. The count process is a clamped
// AR(1) Gaussian: the per-frame target count has mean MeanObjs, stationary
// standard deviation StdObjs, and lag-1 autocorrelation Phi; the scene
// spawns and retires objects to follow it. This reproduces the object/frame
// statistics of Table II with video-like temporal correlation.
type Profile struct {
	Name     string
	FrameW   float64
	FrameH   float64
	FPS      int
	MeanObjs float64
	StdObjs  float64
	Phi      float64
	Motion   Motion
	Classes  []ClassMix
	Colors   []ColorMix
	Sizes    map[Class]SizeRange
	// Static objects present in every frame (e.g. a stop sign in a road
	// surveillance scene). They do not count toward the AR(1) target.
	Static []Object
	// TrainSize and TestSize are the split sizes of Table II.
	TrainSize int
	TestSize  int
}

// Bounds returns the frame rectangle.
func (p Profile) Bounds() geom.Rect { return geom.Rect{X0: 0, Y0: 0, X1: p.FrameW, Y1: p.FrameH} }

// FramesIn converts a wall-clock duration to a frame count at the
// profile's rate — the paper's "for more than say 10 minutes" thresholds
// ("at typical 30 frames per second one can deduce when the count is
// higher than a threshold whether the car maybe parked").
func (p Profile) FramesIn(d time.Duration) int {
	return int(d.Seconds() * float64(p.FPS))
}

// DurationOf converts a frame count to wall-clock time at the profile's
// rate.
func (p Profile) DurationOf(frames int) time.Duration {
	if p.FPS <= 0 {
		return 0
	}
	return time.Duration(float64(frames) / float64(p.FPS) * float64(time.Second))
}

func defaultSizes() map[Class]SizeRange {
	return map[Class]SizeRange{
		Person:   {22, 40, 50, 90},
		Car:      {60, 110, 35, 60},
		Bus:      {120, 200, 55, 90},
		Truck:    {100, 170, 50, 85},
		Bicycle:  {35, 60, 35, 60},
		StopSign: {30, 40, 30, 40},
	}
}

// Coral reproduces the 80-hour aquarium sequence: a single "person" class,
// 8.7 objects/frame with standard deviation 5.1 (Table II), wandering
// motion. Train 52000 frames, test 7215.
func Coral() Profile {
	return Profile{
		Name:   "coral",
		FrameW: 448, FrameH: 448, FPS: 30,
		MeanObjs: 8.7, StdObjs: 5.1, Phi: 0.97,
		Motion:    Wander,
		Classes:   []ClassMix{{Person, 1.0}},
		Colors:    []ColorMix{{White, 0.4}, {Yellow, 0.3}, {Blue, 0.3}},
		Sizes:     defaultSizes(),
		TrainSize: 52000, TestSize: 7215,
	}
}

// Jackson reproduces the zoomed-in traffic intersection: 1.2 objects/frame
// with standard deviation 0.5, classes car (80%) and person (20%)
// (Table II). Train 14094 frames, test 3000. A stop sign is present as a
// static scene element for the paper's Figure 1(b) style aggregate queries.
func Jackson() Profile {
	return Profile{
		Name:   "jackson",
		FrameW: 448, FrameH: 448, FPS: 30,
		MeanObjs: 1.2, StdObjs: 0.5, Phi: 0.97,
		Motion: Linear,
		Classes: []ClassMix{
			{Car, 0.8},
			{Person, 0.2},
		},
		Colors: []ColorMix{
			{White, 0.3}, {Black, 0.25}, {Red, 0.15}, {Blue, 0.15}, {Green, 0.1}, {Yellow, 0.05},
		},
		Sizes: defaultSizes(),
		Static: []Object{{
			TrackID: -1,
			Class:   StopSign,
			Color:   Red,
			Box:     geom.Rect{X0: 380, Y0: 160, X1: 414, Y1: 194},
		}},
		TrainSize: 14094, TestSize: 3000,
	}
}

// Detrac reproduces the DETRAC traffic benchmark: 15.8 objects/frame with
// standard deviation 9.8, classes car (92%), bus (6%), truck (2%)
// (Table II). Train 55020 frames, test 9971.
func Detrac() Profile {
	return Profile{
		Name:   "detrac",
		FrameW: 448, FrameH: 448, FPS: 25,
		MeanObjs: 15.8, StdObjs: 9.8, Phi: 0.97,
		Motion: Linear,
		Classes: []ClassMix{
			{Car, 0.92},
			{Bus, 0.06},
			{Truck, 0.02},
		},
		Colors: []ColorMix{
			{White, 0.35}, {Black, 0.25}, {Red, 0.12}, {Blue, 0.12}, {Green, 0.08}, {Yellow, 0.08},
		},
		Sizes:     defaultSizes(),
		TrainSize: 55020, TestSize: 9971,
	}
}

// Profiles returns the three benchmark profiles in paper order.
func Profiles() []Profile { return []Profile{Coral(), Jackson(), Detrac()} }

// ProfileByName looks a profile up by its dataset name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
