// Package video is the streaming-video substrate: a deterministic scene
// simulator and software rasteriser that stand in for the paper's Coral,
// Jackson and Detrac recordings (which are not redistributable and whose
// decoding would require video tooling Go lacks offline).
//
// A Stream produces Frames; each Frame carries the ground-truth object set
// (class, colour, bounding box, track id) exactly as the paper's Mask R-CNN
// annotation pass would produce, plus an on-demand rasteriser for the
// trained-CNN filter backend. Dataset profiles reproduce the object-count
// distribution and class mixes of Table II, which is what determines the
// selectivities that drive every downstream experiment.
package video

import "fmt"

// Class identifies an object class, a subset of MS-COCO labels matching
// the paper's datasets.
type Class int

// Object classes.
const (
	Person Class = iota
	Car
	Bus
	Truck
	Bicycle
	StopSign
	numClasses
)

// NumClasses is the size of the class universe.
const NumClasses = int(numClasses)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Person:
		return "person"
	case Car:
		return "car"
	case Bus:
		return "bus"
	case Truck:
		return "truck"
	case Bicycle:
		return "bicycle"
	case StopSign:
		return "stop-sign"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass converts a class name to its Class, reporting whether it is
// known. Matching is exact on the canonical lower-case names.
func ParseClass(s string) (Class, bool) {
	for c := Class(0); c < numClasses; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// Color is an object colour attribute (the paper's example queries filter
// on vehicle colour, e.g. "red car").
type Color int

// Object colours.
const (
	AnyColor Color = iota
	Red
	Blue
	Green
	White
	Black
	Yellow
	numColors
)

// NumColors is the size of the colour universe.
const NumColors = int(numColors)

// String implements fmt.Stringer.
func (c Color) String() string {
	switch c {
	case AnyColor:
		return "any"
	case Red:
		return "red"
	case Blue:
		return "blue"
	case Green:
		return "green"
	case White:
		return "white"
	case Black:
		return "black"
	case Yellow:
		return "yellow"
	default:
		return fmt.Sprintf("Color(%d)", int(c))
	}
}

// ParseColor converts a colour name to its Color, reporting whether it is
// known.
func ParseColor(s string) (Color, bool) {
	for c := Color(0); c < numColors; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// RGB returns the rasteriser's base intensity triple for the colour,
// each channel in [0,1].
func (c Color) RGB() (r, g, b float32) {
	switch c {
	case Red:
		return 0.9, 0.15, 0.15
	case Blue:
		return 0.15, 0.2, 0.9
	case Green:
		return 0.15, 0.8, 0.2
	case White:
		return 0.95, 0.95, 0.95
	case Black:
		return 0.1, 0.1, 0.1
	case Yellow:
		return 0.9, 0.85, 0.1
	default:
		return 0.5, 0.5, 0.5
	}
}
