package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// savedParam is the on-wire form of one parameter.
type savedParam struct {
	Name  string
	Shape []int
	Data  []float32
}

// SaveParams serialises parameter values (not gradients or optimizer
// state) to w with gob encoding. Parameters are written in slice order;
// LoadParams restores them into an identically-structured network.
func SaveParams(w io.Writer, params []*Param) error {
	enc := gob.NewEncoder(w)
	out := make([]savedParam, len(params))
	for i, p := range params {
		out[i] = savedParam{Name: p.Name, Shape: p.Value.Shape, Data: p.Value.Data}
	}
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	return nil
}

// LoadParams restores parameter values saved by SaveParams. The target
// network must have the same architecture: parameter count, names and
// shapes are all validated.
func LoadParams(r io.Reader, params []*Param) error {
	dec := gob.NewDecoder(r)
	var in []savedParam
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if len(in) != len(params) {
		return fmt.Errorf("nn: load params: %d saved vs %d in network", len(in), len(params))
	}
	for i, sp := range in {
		p := params[i]
		if sp.Name != p.Name {
			return fmt.Errorf("nn: load params: parameter %d is %q, network expects %q", i, sp.Name, p.Name)
		}
		if len(sp.Data) != p.Value.Len() || !sameShape(sp.Shape, p.Value.Shape) {
			return fmt.Errorf("nn: load params: %q shape %v vs %v", sp.Name, sp.Shape, p.Value.Shape)
		}
	}
	// Validate fully before mutating anything.
	for i, sp := range in {
		copy(params[i].Value.Data, sp.Data)
	}
	return nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
