package nn

import (
	"vmq/internal/tensor"
)

// MSE returns the mean-squared error between pred and target along with the
// gradient with respect to pred.
func MSE(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic("nn: MSE shape mismatch")
	}
	grad = tensor.New(pred.Shape...)
	n := float64(pred.Len())
	for i := range pred.Data {
		d := float64(pred.Data[i]) - float64(target.Data[i])
		loss += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return loss / n, grad
}

// SmoothL1 returns the Huber-style smooth-L1 loss of Fast R-CNN used by the
// paper's count objectives (Eq. 2 and Eq. 3):
//
//	l(d) = 0.5 d²   if |d| < 1
//	       |d|-0.5  otherwise
func SmoothL1(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic("nn: SmoothL1 shape mismatch")
	}
	grad = tensor.New(pred.Shape...)
	n := float64(pred.Len())
	for i := range pred.Data {
		d := float64(pred.Data[i]) - float64(target.Data[i])
		switch {
		case d > 1:
			loss += d - 0.5
			grad.Data[i] = float32(1 / n)
		case d < -1:
			loss += -d - 0.5
			grad.Data[i] = float32(-1 / n)
		default:
			loss += 0.5 * d * d
			grad.Data[i] = float32(d / n)
		}
	}
	return loss / n, grad
}

// MultiTaskLoss is the IC training objective of Eq. 2:
//
//	L = Σ_c weight_c · (α·SmoothL1(x_c, x̂_c) + β·MSE(y_c − ŷ_c))
//
// where x are per-class count predictions, y the class activation maps and
// ŷ the ground-truth location maps. Alpha weighs the count task, Beta the
// localization task; ClassWeights holds weight_c (the fraction of training
// frames containing class c). The paper's schedule starts with Beta = 0 and
// then sets (α, β) = (1, 10), decaying β.
type MultiTaskLoss struct {
	Alpha, Beta  float64
	ClassWeights []float64
}

// Eval computes the loss and the gradients with respect to the count vector
// (length n) and the activation maps (n×g×g).
func (m *MultiTaskLoss) Eval(counts, countLabels, maps, mapLabels *tensor.Tensor) (loss float64, gradCounts, gradMaps *tensor.Tensor) {
	n := counts.Len()
	if countLabels.Len() != n {
		panic("nn: MultiTaskLoss count label length mismatch")
	}
	if !maps.SameShape(mapLabels) || maps.Shape[0] != n {
		panic("nn: MultiTaskLoss map shape mismatch")
	}
	gradCounts = tensor.New(counts.Shape...)
	gradMaps = tensor.New(maps.Shape...)
	plane := maps.Len() / n
	for c := 0; c < n; c++ {
		w := 1.0
		if len(m.ClassWeights) == n {
			w = m.ClassWeights[c]
		}
		// Count term (SmoothL1 on the scalar count).
		d := float64(counts.Data[c]) - float64(countLabels.Data[c])
		var cl, cg float64
		switch {
		case d > 1:
			cl, cg = d-0.5, 1
		case d < -1:
			cl, cg = -d-0.5, -1
		default:
			cl, cg = 0.5*d*d, d
		}
		loss += w * m.Alpha * cl
		gradCounts.Data[c] = float32(w * m.Alpha * cg)
		// Localization term (MSE on the class activation map).
		if m.Beta != 0 {
			var ml float64
			for i := 0; i < plane; i++ {
				md := float64(maps.Data[c*plane+i]) - float64(mapLabels.Data[c*plane+i])
				ml += md * md
				gradMaps.Data[c*plane+i] = float32(w * m.Beta * 2 * md / float64(plane))
			}
			loss += w * m.Beta * ml / float64(plane)
		}
	}
	return loss, gradCounts, gradMaps
}

// BranchLoss is the OD branch objective of Eq. 3: per class, a SmoothL1
// count term plus a grid term that separately balances cells that do and do
// not contain an object:
//
//	L = Σ_c [ λcount·SmoothL1(count_c, coût_c)
//	        + λgrid/g² · Σ_i ( λobj·𝟙obj·(x_ci−x̂_ci)² + λnoobj·𝟙noobj·(x_ci−x̂_ci)² ) ]
type BranchLoss struct {
	LambdaCount float64
	LambdaGrid  float64
	LambdaObj   float64
	LambdaNoObj float64
}

// DefaultBranchLoss mirrors the YOLO-style balancing the paper describes:
// object cells weighted above empty cells to counter the extreme class
// imbalance of a 56×56 grid holding a handful of objects.
func DefaultBranchLoss() BranchLoss {
	return BranchLoss{LambdaCount: 1, LambdaGrid: 1, LambdaObj: 5, LambdaNoObj: 0.5}
}

// Eval computes the loss and gradients for counts (length n) and grid
// predictions (n×g×g) given binary ground-truth masks (n×g×g, 1 where an
// object of class c occupies cell i).
func (b *BranchLoss) Eval(counts, countLabels, grid, gridLabels *tensor.Tensor) (loss float64, gradCounts, gradGrid *tensor.Tensor) {
	n := counts.Len()
	if countLabels.Len() != n || !grid.SameShape(gridLabels) || grid.Shape[0] != n {
		panic("nn: BranchLoss shape mismatch")
	}
	gradCounts = tensor.New(counts.Shape...)
	gradGrid = tensor.New(grid.Shape...)
	plane := grid.Len() / n
	g2 := float64(plane)
	for c := 0; c < n; c++ {
		d := float64(counts.Data[c]) - float64(countLabels.Data[c])
		var cl, cg float64
		switch {
		case d > 1:
			cl, cg = d-0.5, 1
		case d < -1:
			cl, cg = -d-0.5, -1
		default:
			cl, cg = 0.5*d*d, d
		}
		loss += b.LambdaCount * cl
		gradCounts.Data[c] = float32(b.LambdaCount * cg)
		for i := 0; i < plane; i++ {
			idx := c*plane + i
			md := float64(grid.Data[idx]) - float64(gridLabels.Data[idx])
			lam := b.LambdaNoObj
			if gridLabels.Data[idx] > 0.5 {
				lam = b.LambdaObj
			}
			loss += b.LambdaGrid / g2 * lam * md * md
			gradGrid.Data[idx] = float32(b.LambdaGrid / g2 * lam * 2 * md)
		}
	}
	return loss, gradCounts, gradGrid
}
