package nn

import (
	"math"

	"vmq/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and zeroes the gradients of the parameters
	// it owns. Frozen parameters are skipped (their gradients are still
	// cleared).
	Step()
	// ZeroGrad clears all gradients without stepping.
	ZeroGrad()
}

// SGD is stochastic gradient descent with momentum and exponential weight
// decay — the optimizer the paper uses for OD branch training (lr 1e-4,
// momentum 0.9, weight decay 5e-4).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	params      []*Param
	velocity    []*tensor.Tensor
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, params: params}
	s.velocity = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		s.velocity[i] = tensor.New(p.Value.Shape...)
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		v := s.velocity[i]
		for j := range p.Value.Data {
			g := float64(p.Grad.Data[j]) + s.WeightDecay*float64(p.Value.Data[j])
			nv := s.Momentum*float64(v.Data[j]) + g
			v.Data[j] = float32(nv)
			p.Value.Data[j] -= float32(s.LR * nv)
		}
		p.ZeroGrad()
	}
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) used for IC training in the
// paper (lr 1e-4, exponential decay 5e-4).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
	params      []*Param
	m, v        []*tensor.Tensor
	t           int
}

// NewAdam builds an Adam optimizer with the conventional betas.
func NewAdam(params []*Param, lr, weightDecay float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay, params: params}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Shape...)
		a.v[i] = tensor.New(p.Value.Shape...)
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Value.Data {
			g := float64(p.Grad.Data[j]) + a.WeightDecay*float64(p.Value.Data[j])
			nm := a.Beta1*float64(m.Data[j]) + (1-a.Beta1)*g
			nv := a.Beta2*float64(v.Data[j]) + (1-a.Beta2)*g*g
			m.Data[j] = float32(nm)
			v.Data[j] = float32(nv)
			mh := nm / bc1
			vh := nv / bc2
			p.Value.Data[j] -= float32(a.LR * mh / (math.Sqrt(vh) + a.Eps))
		}
		p.ZeroGrad()
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}
