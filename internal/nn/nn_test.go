package nn

import (
	"math"
	"math/rand/v2"
	"testing"

	"vmq/internal/tensor"
)

// numericGrad estimates dLoss/dx[i] by central differences.
func numericGrad(f func() float64, x *tensor.Tensor, i int) float64 {
	const h = 1e-3
	orig := x.Data[i]
	x.Data[i] = orig + h
	lp := f()
	x.Data[i] = orig - h
	lm := f()
	x.Data[i] = orig
	return (lp - lm) / (2 * h)
}

func checkGrads(t *testing.T, name string, f func() float64, analytic *tensor.Tensor, x *tensor.Tensor, indices []int) {
	t.Helper()
	for _, i := range indices {
		num := numericGrad(f, x, i)
		got := float64(analytic.Data[i])
		tol := 1e-2 * math.Max(1, math.Abs(num))
		if math.Abs(num-got) > tol {
			t.Errorf("%s grad[%d] = %v, numeric %v", name, i, got, num)
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	l := NewLinear(rng, 4, 3)
	x := tensor.New(4)
	x.RandN(rng, 1)
	target := tensor.New(3)
	target.RandN(rng, 1)

	loss := func() float64 {
		out := l.Forward(x)
		v, _ := MSE(out, target)
		return v
	}
	out := l.Forward(x)
	_, g := MSE(out, target)
	l.ZeroGradAll()
	gIn := l.Backward(g)
	checkGrads(t, "linear.in", loss, gIn, x, []int{0, 1, 2, 3})
	checkGrads(t, "linear.W", loss, l.W.Grad, l.W.Value, []int{0, 5, 11})
	checkGrads(t, "linear.B", loss, l.B.Grad, l.B.Value, []int{0, 2})
}

// ZeroGradAll is a test helper on Linear.
func (l *Linear) ZeroGradAll() {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	c := NewConv2D(rng, 2, 3, 3, 1, 1)
	x := tensor.New(2, 5, 5)
	x.RandN(rng, 1)
	target := tensor.New(3, 5, 5)
	target.RandN(rng, 1)

	loss := func() float64 {
		out := c.Forward(x)
		v, _ := MSE(out, target)
		return v
	}
	out := c.Forward(x)
	_, g := MSE(out, target)
	for _, p := range c.Params() {
		p.ZeroGrad()
	}
	gIn := c.Backward(g)
	checkGrads(t, "conv.in", loss, gIn, x, []int{0, 12, 30, 49})
	checkGrads(t, "conv.W", loss, c.W.Grad, c.W.Value, []int{0, 10, 26, 53})
	checkGrads(t, "conv.B", loss, c.B.Grad, c.B.Value, []int{0, 2})
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	net := &Sequential{Layers: []Layer{
		NewConv2D(rng, 1, 4, 3, 1, 1),
		&ReLU{},
		&MaxPool{K: 2},
		&GlobalAvgPool{},
		NewLinear(rng, 4, 2),
	}}
	x := tensor.New(1, 8, 8)
	x.RandN(rng, 1)
	target := tensor.New(2)
	target.RandN(rng, 1)
	loss := func() float64 {
		out := net.Forward(x)
		v, _ := MSE(out, target)
		return v
	}
	out := net.Forward(x)
	_, g := MSE(out, target)
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	gIn := net.Backward(g)
	checkGrads(t, "seq.in", loss, gIn, x, []int{0, 17, 40, 63})
	params := net.Params()
	checkGrads(t, "seq.conv.W", loss, params[0].Grad, params[0].Value, []int{0, 9, 20})
	checkGrads(t, "seq.fc.W", loss, params[2].Grad, params[2].Value, []int{0, 7})
}

func TestLeakyReLU(t *testing.T) {
	l := NewLeakyReLU(0)
	if l.Slope != 0.1 {
		t.Fatalf("default slope = %v", l.Slope)
	}
	x := tensor.FromSlice([]float32{-2, 3}, 2)
	out := l.Forward(x)
	if out.Data[0] != -0.2 || out.Data[1] != 3 {
		t.Fatalf("LeakyReLU forward = %v", out.Data)
	}
	g := tensor.FromSlice([]float32{1, 1}, 2)
	back := l.Backward(g)
	if math.Abs(float64(back.Data[0])-0.1) > 1e-6 || back.Data[1] != 1 {
		t.Fatalf("LeakyReLU backward = %v", back.Data)
	}
}

func TestReLUZeroesNegatives(t *testing.T) {
	var l ReLU
	x := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	out := l.Forward(x)
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 2 {
		t.Fatalf("ReLU = %v", out.Data)
	}
	g := tensor.FromSlice([]float32{5, 5, 5}, 3)
	back := l.Backward(g)
	if back.Data[0] != 0 || back.Data[2] != 5 {
		t.Fatalf("ReLU backward = %v", back.Data)
	}
}

func TestMSEAndSmoothL1(t *testing.T) {
	p := tensor.FromSlice([]float32{1, 2}, 2)
	q := tensor.FromSlice([]float32{0, 4}, 2)
	l, g := MSE(p, q)
	if math.Abs(l-(1+4)/2.0) > 1e-6 {
		t.Fatalf("MSE = %v", l)
	}
	if math.Abs(float64(g.Data[0])-1) > 1e-6 || math.Abs(float64(g.Data[1])+2) > 1e-6 {
		t.Fatalf("MSE grad = %v", g.Data)
	}
	// SmoothL1: d=1 -> 0.5, d=-2 -> 1.5.
	l, g = SmoothL1(p, q)
	if math.Abs(l-(0.5+1.5)/2) > 1e-6 {
		t.Fatalf("SmoothL1 = %v", l)
	}
	if g.Data[1] != -0.5 { // clipped gradient / n
		t.Fatalf("SmoothL1 grad = %v", g.Data)
	}
}

func TestSmoothL1QuadraticRegion(t *testing.T) {
	p := tensor.FromSlice([]float32{0.5}, 1)
	q := tensor.FromSlice([]float32{0}, 1)
	l, g := SmoothL1(p, q)
	if math.Abs(l-0.125) > 1e-6 {
		t.Fatalf("SmoothL1 quad = %v", l)
	}
	if math.Abs(float64(g.Data[0])-0.5) > 1e-6 {
		t.Fatalf("SmoothL1 quad grad = %v", g.Data)
	}
}

func TestMultiTaskLossGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	ml := &MultiTaskLoss{Alpha: 1, Beta: 10, ClassWeights: []float64{0.7, 0.3}}
	counts := tensor.New(2)
	counts.RandN(rng, 2)
	clabels := tensor.New(2)
	clabels.RandN(rng, 2)
	maps := tensor.New(2, 3, 3)
	maps.RandN(rng, 1)
	mlabels := tensor.New(2, 3, 3)
	mlabels.RandN(rng, 1)

	loss := func() float64 {
		v, _, _ := ml.Eval(counts, clabels, maps, mlabels)
		return v
	}
	_, gc, gm := ml.Eval(counts, clabels, maps, mlabels)
	checkGrads(t, "mtl.counts", loss, gc, counts, []int{0, 1})
	checkGrads(t, "mtl.maps", loss, gm, maps, []int{0, 8, 17})
}

func TestBranchLossGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	bl := DefaultBranchLoss()
	counts := tensor.New(2)
	counts.RandN(rng, 2)
	clabels := tensor.New(2)
	clabels.RandN(rng, 2)
	grid := tensor.New(2, 4, 4)
	grid.RandN(rng, 1)
	glabels := tensor.New(2, 4, 4)
	for i := range glabels.Data {
		if rng.Float64() < 0.3 {
			glabels.Data[i] = 1
		}
	}
	loss := func() float64 {
		v, _, _ := bl.Eval(counts, clabels, grid, glabels)
		return v
	}
	_, gc, gg := bl.Eval(counts, clabels, grid, glabels)
	checkGrads(t, "branch.counts", loss, gc, counts, []int{0, 1})
	checkGrads(t, "branch.grid", loss, gg, grid, []int{0, 15, 31})
}

func TestCountLocNetForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	const img, d, classes = 16, 8, 3
	net := NewCountLocNet(rng, ICBackbone(rng, 1, img, d), d, img/4, classes)
	frame := tensor.New(1, img, img)
	frame.RandN(rng, 1)
	counts, maps := net.Forward(frame)
	if counts.Len() != classes {
		t.Fatalf("counts shape %v", counts.Shape)
	}
	if maps.Shape[0] != classes || maps.Shape[1] != img/4 || maps.Shape[2] != img/4 {
		t.Fatalf("maps shape %v", maps.Shape)
	}
	for _, v := range counts.Data {
		if v < 0 {
			t.Fatal("ReLU count output negative")
		}
	}
	if net.Grid() != img/4 || net.Classes() != classes {
		t.Fatal("accessors wrong")
	}
}

func TestCountLocNetGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	const img, d, classes = 8, 8, 2
	net := NewCountLocNet(rng, ICBackbone(rng, 1, img, d), d, img/4, classes)
	frame := tensor.New(1, img, img)
	frame.RandN(rng, 1)
	clabels := tensor.FromSlice([]float32{1, 2}, classes)
	mlabels := tensor.New(classes, img/4, img/4)
	mlabels.Data[0] = 1
	ml := &MultiTaskLoss{Alpha: 1, Beta: 10}

	loss := func() float64 {
		c, m := net.Forward(frame)
		v, _, _ := ml.Eval(c, clabels, m, mlabels)
		return v
	}
	c, m := net.Forward(frame)
	_, gc, gm := ml.Eval(c, clabels, m, mlabels)
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	net.Backward(gc, gm)
	// Check backbone conv weights receive correct gradients (the map loss
	// path flows through Eq. 1 into the feature layers).
	params := net.Backbone.Params()
	checkGrads(t, "countloc.conv0.W", loss, params[0].Grad, params[0].Value, []int{0, 5, 17})
	checkGrads(t, "countloc.conv1.W", loss, params[2].Grad, params[2].Value, []int{0, 40})
}

func TestCountLocNetFCFrozenForMaps(t *testing.T) {
	// With TrainFCForMaps=false (paper default) the FC weight gradient must
	// come only from the count path: zero count gradient => zero FC grad.
	rng := rand.New(rand.NewPCG(8, 8))
	const img, d, classes = 8, 8, 2
	net := NewCountLocNet(rng, ICBackbone(rng, 1, img, d), d, img/4, classes)
	frame := tensor.New(1, img, img)
	frame.RandN(rng, 1)
	net.Forward(frame)
	gc := tensor.New(classes)
	gm := tensor.New(classes, img/4, img/4)
	gm.Fill(1)
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	net.Backward(gc, gm)
	if net.FC.W.Grad.L2() != 0 {
		t.Fatal("FC weights received map-loss gradient despite TrainFCForMaps=false")
	}
	net.TrainFCForMaps = true
	net.Forward(frame)
	net.Backward(gc, gm)
	if net.FC.W.Grad.L2() == 0 {
		t.Fatal("FC weights received no gradient with TrainFCForMaps=true")
	}
}

func TestSGDConvergesOnLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	l := NewLinear(rng, 3, 1)
	opt := NewSGD(l.Params(), 0.01, 0.9, 0)
	trueW := []float32{1.5, -2, 0.5}
	for step := 0; step < 1500; step++ {
		x := tensor.New(3)
		x.RandN(rng, 1)
		y := tensor.New(1)
		for i := range trueW {
			y.Data[0] += trueW[i] * x.Data[i]
		}
		out := l.Forward(x)
		_, g := MSE(out, y)
		l.Backward(g)
		opt.Step()
	}
	for i := range trueW {
		if math.Abs(float64(l.W.Value.Data[i]-trueW[i])) > 0.1 {
			t.Fatalf("SGD failed to recover weight %d: %v vs %v", i, l.W.Value.Data[i], trueW[i])
		}
	}
}

func TestAdamConvergesOnLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	l := NewLinear(rng, 3, 1)
	opt := NewAdam(l.Params(), 0.02, 0)
	trueW := []float32{0.7, 1.2, -0.9}
	for step := 0; step < 800; step++ {
		x := tensor.New(3)
		x.RandN(rng, 1)
		y := tensor.New(1)
		for i := range trueW {
			y.Data[0] += trueW[i] * x.Data[i]
		}
		out := l.Forward(x)
		_, g := MSE(out, y)
		l.Backward(g)
		opt.Step()
	}
	for i := range trueW {
		if math.Abs(float64(l.W.Value.Data[i]-trueW[i])) > 0.1 {
			t.Fatalf("Adam failed to recover weight %d: %v vs %v", i, l.W.Value.Data[i], trueW[i])
		}
	}
}

func TestFrozenParamsSkipped(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	l := NewLinear(rng, 2, 1)
	before := l.W.Value.Clone()
	l.W.Frozen = true
	opt := NewSGD(l.Params(), 0.5, 0, 0)
	x := tensor.FromSlice([]float32{1, 1}, 2)
	y := tensor.FromSlice([]float32{10}, 1)
	out := l.Forward(x)
	_, g := MSE(out, y)
	l.Backward(g)
	opt.Step()
	for i := range before.Data {
		if l.W.Value.Data[i] != before.Data[i] {
			t.Fatal("frozen weight was updated")
		}
	}
	if l.W.Grad.L2() != 0 {
		t.Fatal("frozen grad not cleared by Step")
	}
	// Bias was not frozen; it must have moved.
	if l.B.Value.Data[0] == 0 {
		t.Fatal("unfrozen bias did not update")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	l := NewLinear(rng, 2, 1)
	l.W.Value.Fill(1)
	opt := NewSGD(l.Params(), 0.1, 0, 0.5)
	opt2 := NewAdam(l.Params(), 0.1, 0.5)
	_ = opt2
	// Step with zero gradient: only decay acts.
	opt.Step()
	if l.W.Value.Data[0] >= 1 {
		t.Fatal("weight decay did not shrink weights")
	}
}

func TestCountOnlyNetLearnsToCount(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	rng := rand.New(rand.NewPCG(13, 13))
	const img = 16
	net := NewCountOnlyNet(rng, 1, img)
	opt := NewAdam(net.Params(), 1e-3, 0)
	// Frames contain k bright 2x2 blobs; the target is k.
	gen := func() (*tensor.Tensor, float64) {
		k := rng.IntN(4)
		f := tensor.New(1, img, img)
		for i := 0; i < k; i++ {
			y, x := 1+rng.IntN(img-3), 1+rng.IntN(img-3)
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					f.Set(1, 0, y+dy, x+dx)
				}
			}
		}
		return f, float64(k)
	}
	for step := 0; step < 1200; step++ {
		f, k := gen()
		net.TrainStep(f, k, opt)
	}
	var se float64
	const trials = 100
	for i := 0; i < trials; i++ {
		f, k := gen()
		d := net.Forward(f) - k
		se += d * d
	}
	rmse := math.Sqrt(se / trials)
	if rmse > 1.0 {
		t.Fatalf("CountOnlyNet failed to learn counting: RMSE = %v", rmse)
	}
}

func TestOptimizerZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	l := NewLinear(rng, 2, 2)
	l.W.Grad.Fill(5)
	NewSGD(l.Params(), 0.1, 0, 0).ZeroGrad()
	if l.W.Grad.L2() != 0 {
		t.Fatal("SGD.ZeroGrad failed")
	}
	l.W.Grad.Fill(5)
	NewAdam(l.Params(), 0.1, 0).ZeroGrad()
	if l.W.Grad.L2() != 0 {
		t.Fatal("Adam.ZeroGrad failed")
	}
}

func TestODBackboneShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 15))
	bb := ODBackbone(rng, 3, 16, 8)
	in := tensor.New(3, 16, 16)
	in.RandN(rng, 1)
	out := bb.Forward(in)
	if out.Shape[0] != 8 || out.Shape[1] != 4 || out.Shape[2] != 4 {
		t.Fatalf("ODBackbone output %v, want [8 4 4]", out.Shape)
	}
}
