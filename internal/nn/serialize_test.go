package nn

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"vmq/internal/tensor"
)

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	src := &Sequential{Layers: []Layer{
		NewConv2D(rng, 1, 4, 3, 1, 1),
		&ReLU{},
		&GlobalAvgPool{},
		NewLinear(rng, 4, 2),
	}}
	dst := &Sequential{Layers: []Layer{
		NewConv2D(rng, 1, 4, 3, 1, 1),
		&ReLU{},
		&GlobalAvgPool{},
		NewLinear(rng, 4, 2),
	}}
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 8, 8)
	x.RandN(rng, 1)
	a := src.Forward(x)
	b := dst.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("restored network diverges")
		}
	}
}

func TestLoadParamsValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	src := NewLinear(rng, 3, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// Wrong parameter count.
	tooMany := append(NewLinear(rng, 3, 2).Params(), NewLinear(rng, 1, 1).Params()...)
	if err := LoadParams(bytes.NewReader(saved), tooMany); err == nil {
		t.Error("parameter-count mismatch accepted")
	}
	// Wrong shape with right names.
	wrongShape := NewLinear(rng, 4, 2)
	if err := LoadParams(bytes.NewReader(saved), wrongShape.Params()); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("shape mismatch not reported: %v", err)
	}
	// Wrong name.
	wrongName := NewConv2D(rng, 1, 2, 1, 1, 0)
	if err := LoadParams(bytes.NewReader(saved), wrongName.Params()); err == nil {
		t.Error("name mismatch accepted")
	}
	// Truncated stream.
	if err := LoadParams(bytes.NewReader(saved[:5]), src.Params()); err == nil {
		t.Error("truncated stream accepted")
	}
	// Validation happens before mutation: the failed shape load must not
	// have touched the target weights.
	orig := NewLinear(rng, 4, 2)
	copyOf := orig.W.Value.Clone()
	_ = LoadParams(bytes.NewReader(saved), orig.Params())
	for i := range copyOf.Data {
		if orig.W.Value.Data[i] != copyOf.Data[i] {
			t.Fatal("failed load mutated weights")
		}
	}
}
