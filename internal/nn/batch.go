package nn

import (
	"fmt"

	"vmq/internal/tensor"
)

// Batched inference
//
// ForwardBatch runs B frames through the network with one GEMM per layer
// instead of B, using the cache-blocked parallel kernels of package tensor
// and a reusable activation arena so the steady-state hot path performs no
// per-frame allocations. Activations are kept in the feature-major batch
// layout (C×N×H×W, see tensor.Im2ColBatchInto) between layers; the public
// entry points take batch-major NCHW and convert at the boundary.
//
// The batched pass is bit-identical to the per-frame Forward path: every
// kernel accumulates each output element in ascending-k order regardless
// of batch width or worker count, which is what lets the trained filter
// backends serve Evaluate and EvaluateBatch from one code path with
// results independent of how frames were grouped.
//
// ForwardBatch is inference-only: it records no caches for Backward. The
// naive per-frame Forward/Backward path remains the training
// implementation and the correctness reference the batched kernels are
// property-tested against.

// Arena is the reusable scratch allocator behind ForwardBatch. A forward
// pass grabs buffers in a deterministic sequence, so after the first call
// every buffer is reused and the pass allocates nothing per frame. An
// Arena (and any tensor returned from a ForwardBatch using it) must not be
// shared between concurrent forward passes; results are valid until the
// arena's next Reset.
type Arena struct {
	// Workers bounds the GEMM worker count for forward passes run through
	// this arena: 0 (the zero value) lets the tensor kernels size
	// themselves to GOMAXPROCS, matching the historical behaviour, while
	// a positive value pins the budget — the hook the server's coalescing
	// broker uses to split one CPU budget across concurrent evaluators
	// instead of oversubscribing every merged GEMM.
	Workers int

	slots [][]float32
	next  int
}

// Reset rewinds the arena so the next forward pass reuses its buffers.
// Tensors handed out since the previous Reset become invalid.
func (a *Arena) Reset() { a.next = 0 }

// grab returns the next scratch buffer, growing it to n elements. The
// contents are arbitrary; kernels writing into arena tensors must not
// assume zeroed memory.
//
// Regrowth carries headroom: the server's cross-feed coalescing hands the
// same network batches whose width fluctuates flush to flush (a lone
// deadline-flushed frame up to every feed tripping the size trigger at
// once), and doubling-with-slack lets a ratcheting batch width settle
// after one reallocation instead of reallocating at each new maximum.
func (a *Arena) grab(n int) []float32 {
	if a.next == len(a.slots) {
		a.slots = append(a.slots, make([]float32, n))
	}
	s := a.slots[a.next]
	if cap(s) < n {
		c := 2 * cap(s)
		if c < n+n/4 {
			c = n + n/4
		}
		s = make([]float32, c)
		a.slots[a.next] = s
	}
	a.next++
	return s[:n]
}

// tensor returns an arena-backed tensor of the given shape with undefined
// contents.
func (a *Arena) tensor(shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &tensor.Tensor{Shape: shape, Data: a.grab(n)}
}

// ForwardBatch runs a batch of inputs (leading batch dimension: N×C×H×W)
// through the layer stack and returns the batch-major output (N×C×OH×OW
// after a conv stack, N×C after GAP, N×out after a Linear head). The
// result is arena-backed: valid until the arena is next Reset. Per-frame
// results are bit-identical to Forward.
func (s *Sequential) ForwardBatch(ar *Arena, batch *tensor.Tensor) *tensor.Tensor {
	if batch.Rank() != 4 {
		panic(fmt.Sprintf("nn: ForwardBatch needs an NCHW batch, got %v", batch.Shape))
	}
	x := tensor.SwapBatchChannel(ar.tensor(batch.Shape...), batch)
	x = forwardBatchFM(ar, s.Layers, x)
	return tensor.SwapBatchChannel(ar.tensor(x.Shape...), x)
}

// forwardBatchFM runs the layers over a feature-major batch. A ReLU or
// LeakyReLU directly after a convolution is fused into the conv's bias
// pass — same values, one fewer sweep over the activations.
func forwardBatchFM(ar *Arena, layers []Layer, x *tensor.Tensor) *tensor.Tensor {
	for i := 0; i < len(layers); i++ {
		if conv, ok := layers[i].(*Conv2D); ok {
			var act Layer
			if i+1 < len(layers) {
				switch layers[i+1].(type) {
				case *ReLU, *LeakyReLU:
					act = layers[i+1]
					i++
				}
			}
			x = convForwardBatchFM(ar, conv, x, act)
			continue
		}
		x = layerForwardBatchFM(ar, layers[i], x)
	}
	return x
}

func layerForwardBatchFM(ar *Arena, l Layer, x *tensor.Tensor) *tensor.Tensor {
	switch l := l.(type) {
	case *Conv2D:
		return convForwardBatchFM(ar, l, x, nil)
	case *ReLU:
		for i, v := range x.Data {
			if v <= 0 {
				x.Data[i] = 0
			}
		}
		return x
	case *LeakyReLU:
		for i, v := range x.Data {
			if v <= 0 {
				x.Data[i] = v * l.Slope
			}
		}
		return x
	case *MaxPool:
		c, n, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
		return tensor.MaxPool2DBatchInto(ar.tensor(c, n, h/l.K, w/l.K), x, l.K)
	case *GlobalAvgPool:
		return tensor.GlobalAvgPoolBatchInto(ar.tensor(x.Shape[0], x.Shape[1]), x)
	case *Linear:
		return linearForwardBatchFM(ar, l, x)
	case *Sequential:
		return forwardBatchFM(ar, l.Layers, x)
	default:
		panic(fmt.Sprintf("nn: ForwardBatch has no batched path for layer type %T", l))
	}
}

// convForwardBatchFM lowers the batched convolution to one im2col and one
// parallel GEMM: cols is (C·KH·KW)×(N·OH·OW), and the weight GEMM's output
// (outC × N·OH·OW) is already the next layer's feature-major input. A
// non-nil act (ReLU or LeakyReLU) is applied in the same pass as the bias.
func convForwardBatchFM(ar *Arena, l *Conv2D, x *tensor.Tensor, act Layer) *tensor.Tensor {
	c, n, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := l.P.OutSize(h, w)
	outC := l.W.Value.Shape[0]
	ckk := l.W.Value.Len() / outC
	if c != l.W.Value.Shape[1] {
		panic(fmt.Sprintf("nn: ForwardBatch conv channels %d vs weights %v", c, l.W.Value.Shape))
	}
	cols := tensor.Im2ColBatchInto(ar.tensor(ckk, n*oh*ow), x, l.P)
	kind, slope := tensor.ActNone, float32(0)
	switch a := act.(type) {
	case *ReLU:
		kind = tensor.ActReLU
	case *LeakyReLU:
		kind, slope = tensor.ActLeakyReLU, a.Slope
	}
	out := tensor.MatMulBiasAct(ar.tensor(outC, n*oh*ow), l.W.Value.Reshape(outC, ckk), cols,
		l.B.Value.Data, kind, slope, ar.Workers)
	out.Shape = []int{outC, n, oh, ow}
	return out
}

// linearForwardBatchFM applies a fully connected layer to a feature-major
// batch: one GEMM of the out×in weights against the in×N activation
// matrix. Inputs with spatial extent are flattened per frame in the same
// c-major order the per-frame path uses.
func linearForwardBatchFM(ar *Arena, l *Linear, x *tensor.Tensor) *tensor.Tensor {
	out, in := l.W.Value.Shape[0], l.W.Value.Shape[1]
	var xm *tensor.Tensor
	n := x.Shape[1]
	if x.Rank() == 2 {
		xm = x
	} else {
		c := x.Shape[0]
		plane := x.Len() / (c * n)
		xm = ar.tensor(c*plane, n)
		for ci := 0; ci < c; ci++ {
			for f := 0; f < n; f++ {
				src := x.Data[(ci*n+f)*plane : (ci*n+f+1)*plane]
				for s, v := range src {
					xm.Data[(ci*plane+s)*n+f] = v
				}
			}
		}
	}
	if xm.Shape[0] != in {
		panic(fmt.Sprintf("nn: ForwardBatch linear input %d vs weights %v", xm.Shape[0], l.W.Value.Shape))
	}
	return tensor.MatMulBiasAct(ar.tensor(out, n), l.W.Value, xm, l.B.Value.Data, tensor.ActNone, 0, ar.Workers)
}

// ForwardFlops estimates the multiply-add flops one frame of a c×h×w input
// costs through the stack — the GEMM terms only, which dominate. The
// coalescing broker multiplies this by the merged batch width to decide
// whether a flush is worth fanning across cores.
func (s *Sequential) ForwardFlops(c, h, w int) int64 {
	fl, _, _, _ := stackFlops(s.Layers, c, h, w)
	return fl
}

func stackFlops(layers []Layer, c, h, w int) (int64, int, int, int) {
	var fl int64
	for _, l := range layers {
		switch l := l.(type) {
		case *Conv2D:
			outC := l.W.Value.Shape[0]
			ckk := l.W.Value.Len() / outC
			oh, ow := l.P.OutSize(h, w)
			fl += 2 * int64(outC) * int64(ckk) * int64(oh) * int64(ow)
			c, h, w = outC, oh, ow
		case *MaxPool:
			h, w = h/l.K, w/l.K
		case *GlobalAvgPool:
			h, w = 1, 1
		case *Linear:
			out, in := l.W.Value.Shape[0], l.W.Value.Shape[1]
			fl += 2 * int64(out) * int64(in)
			c, h, w = out, 1, 1
		case *Sequential:
			var sub int64
			sub, c, h, w = stackFlops(l.Layers, c, h, w)
			fl += sub
		}
	}
	return fl, c, h, w
}

// ForwardFlops estimates the per-frame multiply-add flops of the backbone
// plus the count head and the Eq. 1 class-activation accumulation.
func (n *CountLocNet) ForwardFlops(c, h, w int) int64 {
	fl, _, _, _ := stackFlops(n.Backbone.Layers, c, h, w)
	head := 2 * int64(n.classes) * int64(n.d)
	cam := 2 * int64(n.classes) * int64(n.d) * int64(n.g) * int64(n.g)
	return fl + head + cam
}

// ForwardFlops estimates the per-frame multiply-add flops of the
// count-only stack.
func (n *CountOnlyNet) ForwardFlops(c, h, w int) int64 { return n.Net.ForwardFlops(c, h, w) }

// ForwardBatch runs a batch of frames (N×C×H×W) through backbone and head,
// returning per-class counts (N×classes, post-ReLU) and class activation
// maps (N×classes×g×g). Both are arena-backed (valid until the arena's
// next Reset) and bit-identical per frame to Forward.
func (n *CountLocNet) ForwardBatch(ar *Arena, batch *tensor.Tensor) (counts, maps *tensor.Tensor) {
	if batch.Rank() != 4 {
		panic(fmt.Sprintf("nn: ForwardBatch needs an NCHW batch, got %v", batch.Shape))
	}
	nb := batch.Shape[0]
	x := tensor.SwapBatchChannel(ar.tensor(batch.Shape...), batch)
	fm := forwardBatchFM(ar, n.Backbone.Layers, x)
	if fm.Rank() != 4 || fm.Shape[0] != n.d || fm.Shape[1] != nb || fm.Shape[2] != n.g || fm.Shape[3] != n.g {
		panic("nn: backbone output shape does not match CountLocNet head")
	}
	pooled := tensor.GlobalAvgPoolBatchInto(ar.tensor(n.d, nb), fm) // d×N
	raw := linearForwardBatchFM(ar, n.FC, pooled)                   // classes×N
	for i, v := range raw.Data {
		if v <= 0 {
			raw.Data[i] = 0
		}
	}
	counts = tensor.SwapBatchChannel(ar.tensor(nb, n.classes), raw)

	// Class activation maps (Eq. 1), accumulated over k in the same order
	// as the per-frame path.
	plane := n.g * n.g
	maps = ar.tensor(nb, n.classes, n.g, n.g)
	for i := range maps.Data {
		maps.Data[i] = 0
	}
	for c := 0; c < n.classes; c++ {
		wrow := n.FC.W.Value.Data[c*n.d : (c+1)*n.d]
		for k := 0; k < n.d; k++ {
			w := wrow[k]
			if w == 0 {
				continue
			}
			for f := 0; f < nb; f++ {
				fplane := fm.Data[(k*nb+f)*plane : (k*nb+f+1)*plane]
				mplane := maps.Data[(f*n.classes+c)*plane : (f*n.classes+c+1)*plane]
				for i := range mplane {
					mplane[i] += w * fplane[i]
				}
			}
		}
	}
	return counts, maps
}

// ForwardBatch predicts the total object count for each frame of an NCHW
// batch, returning a length-N arena-backed tensor (valid until the
// arena's next Reset). Values are clamped at zero like Forward.
func (n *CountOnlyNet) ForwardBatch(ar *Arena, batch *tensor.Tensor) *tensor.Tensor {
	out := n.Net.ForwardBatch(ar, batch) // N×1
	nb := out.Shape[0]
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	out.Shape = []int{nb}
	return out
}
