package nn

import (
	"math"
	"math/rand/v2"
	"testing"

	"vmq/internal/tensor"
)

// randomFrames builds a batch-major NCHW tensor and the per-frame CHW
// views of the same data.
func randomFrames(rng *rand.Rand, n, c, img int) (*tensor.Tensor, []*tensor.Tensor) {
	batch := tensor.New(n, c, img, img)
	batch.RandN(rng, 1)
	frames := make([]*tensor.Tensor, n)
	for f := 0; f < n; f++ {
		frames[f] = tensor.FromSlice(batch.Data[f*c*img*img:(f+1)*c*img*img], c, img, img)
	}
	return batch, frames
}

// ForwardBatch must be bit-identical per frame to the per-frame Forward
// path: both accumulate every output element in ascending-k order, so no
// tolerance is needed. This is the property that keeps batched engine
// execution result-identical to the sequential reference.
func TestCountLocNetForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 0))
	for _, tc := range []struct {
		name string
		od   bool
		n    int
	}{
		{"ic-b1", false, 1},
		{"ic-b5", false, 5},
		{"od-b7", true, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const img, d, classes = 32, 16, 3
			var backbone *Sequential
			if tc.od {
				backbone = ODBackbone(rng, 3, img, d)
			} else {
				backbone = ICBackbone(rng, 3, img, d)
			}
			net := NewCountLocNet(rng, backbone, d, img/4, classes)
			batch, frames := randomFrames(rng, tc.n, 3, img)

			ar := &Arena{}
			ar.Reset()
			counts, maps := net.ForwardBatch(ar, batch)
			if counts.Shape[0] != tc.n || counts.Shape[1] != classes {
				t.Fatalf("counts shape %v", counts.Shape)
			}
			g := img / 4
			if maps.Shape[0] != tc.n || maps.Shape[1] != classes || maps.Shape[2] != g {
				t.Fatalf("maps shape %v", maps.Shape)
			}
			for f := 0; f < tc.n; f++ {
				wc, wm := net.Forward(frames[f])
				for ci := 0; ci < classes; ci++ {
					if got := counts.Data[f*classes+ci]; got != wc.Data[ci] {
						t.Fatalf("frame %d class %d count = %g, want %g", f, ci, got, wc.Data[ci])
					}
				}
				for i := 0; i < classes*g*g; i++ {
					if got := maps.Data[f*classes*g*g+i]; got != wm.Data[i] {
						t.Fatalf("frame %d map elem %d = %g, want %g", f, i, got, wm.Data[i])
					}
				}
			}

			// A second pass over the same arena (dirty buffers) must agree.
			ar.Reset()
			counts2, _ := net.ForwardBatch(ar, batch)
			for i := range counts.Data {
				if counts2.Data[i] != counts.Data[i] {
					t.Fatalf("arena reuse changed counts at %d", i)
				}
			}
		})
	}
}

func TestCountOnlyNetForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 0))
	const img = 32
	net := NewCountOnlyNet(rng, 3, img)
	batch, frames := randomFrames(rng, 6, 3, img)
	ar := &Arena{}
	ar.Reset()
	out := net.ForwardBatch(ar, batch)
	if out.Len() != 6 {
		t.Fatalf("batch output length %d", out.Len())
	}
	for f, frame := range frames {
		want := net.Forward(frame)
		if got := float64(out.Data[f]); got != want {
			t.Fatalf("frame %d total = %g, want %g", f, got, want)
		}
	}
}

// Sequential.ForwardBatch handles a conv stack ending in GAP + Linear (the
// COF topology) and plain conv outputs alike, and a Linear directly after
// a spatial layer flattens frames in the same order Forward does.
func TestSequentialForwardBatchFlatten(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 0))
	const img = 8
	seq := &Sequential{Layers: []Layer{
		NewConv2D(rng, 2, 4, 3, 1, 1),
		&ReLU{},
		NewLinear(rng, 4*img*img, 5),
	}}
	batch, frames := randomFrames(rng, 3, 2, img)
	ar := &Arena{}
	ar.Reset()
	out := seq.ForwardBatch(ar, batch)
	if out.Shape[0] != 3 || out.Shape[1] != 5 {
		t.Fatalf("output shape %v", out.Shape)
	}
	for f, frame := range frames {
		want := seq.Forward(frame)
		for o := 0; o < 5; o++ {
			if got := out.Data[f*5+o]; got != want.Data[o] {
				t.Fatalf("frame %d out %d = %g, want %g", f, o, got, want.Data[o])
			}
		}
	}
}

// The batched pass must not allocate per frame: a 32-frame ForwardBatch on
// a warmed arena performs at least 5x fewer allocations than 32 per-frame
// Forwards (the acceptance bar; in practice it is closer to 100x).
func TestForwardBatchAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(34, 0))
	const img, d, classes, b = 32, 16, 2, 32
	net := NewCountLocNet(rng, ICBackbone(rng, 3, img, d), d, img/4, classes)
	batch, frames := randomFrames(rng, b, 3, img)
	ar := &Arena{}
	ar.Reset()
	net.ForwardBatch(ar, batch) // warm the arena
	batched := testing.AllocsPerRun(3, func() {
		ar.Reset()
		net.ForwardBatch(ar, batch)
	})
	perFrame := testing.AllocsPerRun(3, func() {
		for _, f := range frames {
			net.Forward(f)
		}
	})
	if batched*5 > perFrame {
		t.Fatalf("batched pass allocates %.0f for %d frames vs %.0f per-frame — want >=5x fewer", batched, b, perFrame)
	}
}

// A pinned arena worker budget must never change output bytes — workers
// partition GEMM columns, and each column's accumulation order is fixed —
// and ForwardFlops must track the architecture monotonically (it is the
// broker's fan-out threshold).
func TestArenaWorkersBitIdenticalAndForwardFlops(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 0))
	const img, d, classes = 32, 16, 3
	net := NewCountLocNet(rng, ODBackbone(rng, 3, img, d), d, img/4, classes)
	batch, _ := randomFrames(rng, 6, 3, img)

	ref := &Arena{}
	wantCounts, wantMaps := net.ForwardBatch(ref, batch)
	for _, workers := range []int{1, 2, 3, 7} {
		ar := &Arena{Workers: workers}
		counts, maps := net.ForwardBatch(ar, batch)
		for i := range wantCounts.Data {
			if math.Float32bits(counts.Data[i]) != math.Float32bits(wantCounts.Data[i]) {
				t.Fatalf("workers=%d: counts[%d] = %v, want %v", workers, i, counts.Data[i], wantCounts.Data[i])
			}
		}
		for i := range wantMaps.Data {
			if math.Float32bits(maps.Data[i]) != math.Float32bits(wantMaps.Data[i]) {
				t.Fatalf("workers=%d: maps[%d] = %v, want %v", workers, i, maps.Data[i], wantMaps.Data[i])
			}
		}
	}

	fl := net.ForwardFlops(3, img, img)
	if fl <= 0 {
		t.Fatalf("ForwardFlops = %d, want positive", fl)
	}
	// A deeper/wider net must cost more.
	big := NewCountLocNet(rng, ODBackbone(rng, 3, img, 2*d), 2*d, img/4, classes)
	if bfl := big.ForwardFlops(3, img, img); bfl <= fl {
		t.Fatalf("wider backbone ForwardFlops %d not > %d", bfl, fl)
	}
	cof := NewCountOnlyNet(rng, 3, img)
	if cfl := cof.ForwardFlops(3, img, img); cfl <= 0 {
		t.Fatalf("CountOnlyNet.ForwardFlops = %d, want positive", cfl)
	}
}
