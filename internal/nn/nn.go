// Package nn is a small from-scratch neural-network library built on
// package tensor. It provides exactly the pieces the paper's filter
// architectures need: 2-D convolution, ReLU/LeakyReLU, max pooling, global
// average pooling and fully connected layers with reverse-mode gradients;
// the SmoothL1 and MSE losses combined into the paper's multi-task
// objectives (Eq. 2 for IC filters, Eq. 3 for OD branch networks); and the
// SGD-with-momentum and Adam optimizers used in Section IV.
//
// The library operates on single examples (CHW tensors); mini-batching is
// done by accumulating gradients across calls before stepping the
// optimizer, which keeps the implementation simple and is fast enough for
// the laptop-scale frames the reproduction trains on.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"vmq/internal/tensor"
)

// Param is a trainable tensor with its accumulated gradient. Frozen
// parameters keep accumulating gradients but are skipped by optimizers —
// the paper freezes the FC weights while optimizing localization.
type Param struct {
	Name   string
	Value  *tensor.Tensor
	Grad   *tensor.Tensor
	Frozen bool
}

// NewParam allocates a parameter and its gradient buffer.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward consumes an input tensor and
// caches whatever the backward pass needs; Backward consumes the gradient
// with respect to the output and returns the gradient with respect to the
// input, accumulating parameter gradients along the way.
type Layer interface {
	Forward(in *tensor.Tensor) *tensor.Tensor
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Conv2D is a convolution layer with square kernels.
type Conv2D struct {
	W, B    *Param
	P       tensor.ConvParams
	lastIn  *tensor.Tensor
	lastCol *tensor.Tensor
}

// NewConv2D builds a conv layer with He-initialised weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, padding int) *Conv2D {
	l := &Conv2D{
		W: NewParam(fmt.Sprintf("conv%dx%d.w", k, k), outC, inC, k, k),
		B: NewParam(fmt.Sprintf("conv%dx%d.b", k, k), outC),
		P: tensor.ConvParams{KH: k, KW: k, Stride: stride, Padding: padding},
	}
	fanIn := float64(inC * k * k)
	l.W.Value.RandN(rng, math.Sqrt(2/fanIn))
	return l
}

// Forward implements Layer.
func (l *Conv2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.lastIn = in
	l.lastCol = tensor.Im2Col(in, l.P)
	outC := l.W.Value.Shape[0]
	oh, ow := l.P.OutSize(in.Shape[1], in.Shape[2])
	wmat := l.W.Value.Reshape(outC, l.W.Value.Len()/outC)
	out := tensor.MatMul(wmat, l.lastCol)
	for o := 0; o < outC; o++ {
		b := l.B.Value.Data[o]
		row := out.Data[o*oh*ow : (o+1)*oh*ow]
		for i := range row {
			row[i] += b
		}
	}
	return out.Reshape(outC, oh, ow)
}

// Backward implements Layer.
func (l *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	outC := l.W.Value.Shape[0]
	gmat := gradOut.Reshape(outC, gradOut.Len()/outC)
	// dW = gOut × colsᵀ ; accumulate.
	dW := tensor.MatMulT2(gmat, l.lastCol)
	l.W.Grad.AddInPlace(dW.Reshape(l.W.Value.Shape...))
	// dB = row sums of gOut.
	for o := 0; o < outC; o++ {
		var s float32
		for _, v := range gmat.Data[o*gmat.Shape[1] : (o+1)*gmat.Shape[1]] {
			s += v
		}
		l.B.Grad.Data[o] += s
	}
	// dIn = Col2Im(Wᵀ × gOut).
	wmat := l.W.Value.Reshape(outC, l.W.Value.Len()/outC)
	dcols := tensor.MatMulT1(wmat, gmat)
	c, h, w := l.lastIn.Shape[0], l.lastIn.Shape[1], l.lastIn.Shape[2]
	return tensor.Col2Im(dcols, c, h, w, l.P)
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// Linear is a fully connected layer mapping a length-in vector to
// length-out.
type Linear struct {
	W, B   *Param // W: out×in
	lastIn *tensor.Tensor
}

// NewLinear builds a linear layer with Xavier-initialised weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{
		W: NewParam("linear.w", out, in),
		B: NewParam("linear.b", out),
	}
	l.W.Value.RandN(rng, math.Sqrt(1/float64(in)))
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(in *tensor.Tensor) *tensor.Tensor {
	flat := in.Reshape(in.Len())
	l.lastIn = flat
	out, wrows := l.W.Value.Shape[0], l.W.Value.Shape[1]
	if wrows != flat.Len() {
		panic(fmt.Sprintf("nn: Linear input %d vs weights %v", flat.Len(), l.W.Value.Shape))
	}
	y := tensor.New(out)
	for o := 0; o < out; o++ {
		row := l.W.Value.Data[o*wrows : (o+1)*wrows]
		var s float32
		for i, v := range flat.Data {
			s += row[i] * v
		}
		y.Data[o] = s + l.B.Value.Data[o]
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	out, in := l.W.Value.Shape[0], l.W.Value.Shape[1]
	dIn := tensor.New(in)
	for o := 0; o < out; o++ {
		g := gradOut.Data[o]
		l.B.Grad.Data[o] += g
		wrow := l.W.Value.Data[o*in : (o+1)*in]
		grow := l.W.Grad.Data[o*in : (o+1)*in]
		for i := 0; i < in; i++ {
			grow[i] += g * l.lastIn.Data[i]
			dIn.Data[i] += g * wrow[i]
		}
	}
	return dIn
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLU applies max(0,x).
type ReLU struct{ mask []bool }

// Forward implements Layer.
func (l *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	if cap(l.mask) < len(out.Data) {
		l.mask = make([]bool, len(out.Data))
	}
	l.mask = l.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			l.mask[i] = false
		} else {
			l.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := gradOut.Clone()
	for i := range g.Data {
		if !l.mask[i] {
			g.Data[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// LeakyReLU applies x>0 ? x : slope*x, the activation of the paper's
// OD-COF branch (Table I).
type LeakyReLU struct {
	Slope float32
	mask  []bool
}

// NewLeakyReLU returns a LeakyReLU with the conventional 0.1 slope used by
// Darknet when slope <= 0.
func NewLeakyReLU(slope float32) *LeakyReLU {
	if slope <= 0 {
		slope = 0.1
	}
	return &LeakyReLU{Slope: slope}
}

// Forward implements Layer.
func (l *LeakyReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	if cap(l.mask) < len(out.Data) {
		l.mask = make([]bool, len(out.Data))
	}
	l.mask = l.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = v * l.Slope
			l.mask[i] = false
		} else {
			l.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := gradOut.Clone()
	for i := range g.Data {
		if !l.mask[i] {
			g.Data[i] *= l.Slope
		}
	}
	return g
}

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// MaxPool is non-overlapping k×k max pooling.
type MaxPool struct {
	K       int
	inShape []int
	argmax  []int
}

// Forward implements Layer.
func (l *MaxPool) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.inShape = append(l.inShape[:0], in.Shape...)
	out, arg := tensor.MaxPool2D(in, l.K)
	l.argmax = arg
	return out
}

// Backward implements Layer.
func (l *MaxPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPool2DBackward(gradOut, l.argmax, l.inShape)
}

// Params implements Layer.
func (l *MaxPool) Params() []*Param { return nil }

// GlobalAvgPool reduces CHW to a length-C vector.
type GlobalAvgPool struct{ c, h, w int }

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.c, l.h, l.w = in.Shape[0], in.Shape[1], in.Shape[2]
	return tensor.GlobalAvgPool(in)
}

// Backward implements Layer.
func (l *GlobalAvgPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return tensor.GlobalAvgPoolBackward(gradOut, l.c, l.h, l.w)
}

// Params implements Layer.
func (l *GlobalAvgPool) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct{ Layers []Layer }

// Forward implements Layer.
func (s *Sequential) Forward(in *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		in = l.Forward(in)
	}
	return in
}

// Backward implements Layer.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
