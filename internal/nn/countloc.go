package nn

import (
	"math/rand/v2"

	"vmq/internal/tensor"
)

// CountLocNet is the paper's branch architecture (Figures 2 and 4): a
// convolutional backbone produces a feature map fm of shape d×g×g; global
// average pooling followed by a fully connected layer with ReLU yields an
// n-vector of per-class counts; and the class activation map for class c is
//
//	M_c(i,j) = Σ_k w_ck · fm_k(i,j)                      (Eq. 1)
//
// computed from the same FC weights, localising objects of class c on the
// g×g grid. The IC filters instantiate the backbone with classifier-style
// convolutions (VGG-like), the OD filters with detector-style convolutions
// (Darknet-like); the head is identical.
type CountLocNet struct {
	Backbone *Sequential
	FC       *Linear // maps d -> n classes
	relu     ReLU

	// TrainFCForMaps controls whether the localization loss also updates
	// the FC weights. The paper fixes them ("we fix the weights of the
	// fully connected layer and only back-propagate the error to the
	// feature layers"), which is the default (false).
	TrainFCForMaps bool

	d, g    int // feature channels, grid size
	classes int

	lastFM     *tensor.Tensor // d×g×g
	lastPooled *tensor.Tensor // d
}

// NewCountLocNet wires a backbone whose output is d×g×g to an n-class head.
func NewCountLocNet(rng *rand.Rand, backbone *Sequential, d, g, classes int) *CountLocNet {
	return &CountLocNet{
		Backbone: backbone,
		FC:       NewLinear(rng, d, classes),
		d:        d,
		g:        g,
		classes:  classes,
	}
}

// Grid returns the activation-map resolution g.
func (n *CountLocNet) Grid() int { return n.g }

// Classes returns the number of object classes.
func (n *CountLocNet) Classes() int { return n.classes }

// Forward runs the frame (CHW tensor) through backbone and head, returning
// per-class counts (length classes, post-ReLU) and class activation maps
// (classes×g×g).
func (n *CountLocNet) Forward(frame *tensor.Tensor) (counts, maps *tensor.Tensor) {
	fm := n.Backbone.Forward(frame)
	if fm.Rank() != 3 || fm.Shape[0] != n.d || fm.Shape[1] != n.g || fm.Shape[2] != n.g {
		panic("nn: backbone output shape does not match CountLocNet head")
	}
	n.lastFM = fm
	n.lastPooled = tensor.GlobalAvgPool(fm)
	raw := n.FC.Forward(n.lastPooled)
	counts = n.relu.Forward(raw)

	// Class activation maps from the FC weights (Eq. 1).
	maps = tensor.New(n.classes, n.g, n.g)
	plane := n.g * n.g
	for c := 0; c < n.classes; c++ {
		wrow := n.FC.W.Value.Data[c*n.d : (c+1)*n.d]
		mplane := maps.Data[c*plane : (c+1)*plane]
		for k := 0; k < n.d; k++ {
			w := wrow[k]
			if w == 0 {
				continue
			}
			fplane := fm.Data[k*plane : (k+1)*plane]
			for i := range mplane {
				mplane[i] += w * fplane[i]
			}
		}
	}
	return counts, maps
}

// Backward accumulates gradients given the loss gradients with respect to
// the count vector and the activation maps, and returns the gradient with
// respect to the input frame (usually discarded).
func (n *CountLocNet) Backward(gradCounts, gradMaps *tensor.Tensor) *tensor.Tensor {
	// Count path: ReLU -> FC -> GAP.
	gRaw := n.relu.Backward(gradCounts)
	gPooled := n.FC.Backward(gRaw)
	gFM := tensor.GlobalAvgPoolBackward(gPooled, n.d, n.g, n.g)

	// Map path: dL/dfm_k(i,j) += Σ_c w_ck · gradMaps_c(i,j); the FC weight
	// gradient from this path is only applied when TrainFCForMaps is set.
	if gradMaps != nil {
		plane := n.g * n.g
		for c := 0; c < n.classes; c++ {
			wrow := n.FC.W.Value.Data[c*n.d : (c+1)*n.d]
			gplane := gradMaps.Data[c*plane : (c+1)*plane]
			for k := 0; k < n.d; k++ {
				w := wrow[k]
				fgrad := gFM.Data[k*plane : (k+1)*plane]
				for i := range gplane {
					fgrad[i] += w * gplane[i]
				}
			}
			if n.TrainFCForMaps {
				grow := n.FC.W.Grad.Data[c*n.d : (c+1)*n.d]
				for k := 0; k < n.d; k++ {
					fplane := n.lastFM.Data[k*plane : (k+1)*plane]
					var s float32
					for i := range gplane {
						s += gplane[i] * fplane[i]
					}
					grow[k] += s
				}
			}
		}
	}
	return n.Backbone.Backward(gFM)
}

// Params returns all trainable parameters (backbone then head).
func (n *CountLocNet) Params() []*Param {
	return append(n.Backbone.Params(), n.FC.Params()...)
}

// FreezeFC marks the FC parameters frozen (used during the paper's
// localization-phase schedule) or unfreezes them.
func (n *CountLocNet) FreezeFC(frozen bool) {
	n.FC.W.Frozen = frozen
	n.FC.B.Frozen = frozen
}

// ICBackbone builds a small VGG-style classifier backbone for inC-channel
// frames of size img×img producing d feature maps at grid g = img/4:
// two conv+ReLU+maxpool stages, mirroring "the first five layers of VGG19"
// at reproduction scale.
func ICBackbone(rng *rand.Rand, inC, img, d int) *Sequential {
	mid := d / 2
	if mid < 4 {
		mid = 4
	}
	return &Sequential{Layers: []Layer{
		NewConv2D(rng, inC, mid, 3, 1, 1),
		&ReLU{},
		&MaxPool{K: 2},
		NewConv2D(rng, mid, d, 3, 1, 1),
		&ReLU{},
		&MaxPool{K: 2},
	}}
}

// ODBackbone builds a Darknet-style detector backbone with LeakyReLU
// activations, mirroring "the first eight layers of Darknet-19" at
// reproduction scale: three conv stages with two pooling steps, so
// g = img/4 like the IC backbone (the paper branches both at a 56×56 grid).
func ODBackbone(rng *rand.Rand, inC, img, d int) *Sequential {
	mid := d / 2
	if mid < 4 {
		mid = 4
	}
	return &Sequential{Layers: []Layer{
		NewConv2D(rng, inC, mid, 3, 1, 1),
		NewLeakyReLU(0.1),
		&MaxPool{K: 2},
		NewConv2D(rng, mid, d, 3, 1, 1),
		NewLeakyReLU(0.1),
		&MaxPool{K: 2},
		NewConv2D(rng, d, d, 1, 1, 0),
		NewLeakyReLU(0.1),
	}}
}

// CountOnlyNet is the OD-COF alternative of Section II-B1 (Figure 5 /
// Table I): the detector features are max-pooled and passed through a
// conv stack and GAP into a single regression head that predicts only the
// total object count.
type CountOnlyNet struct {
	Net *Sequential
}

// NewCountOnlyNet builds the count-optimized classifier branch for
// inC-channel img×img frames. The conv stack follows Table I's pattern
// (1×1 and 3×3 LeakyReLU convolutions) scaled down to reproduction size.
func NewCountOnlyNet(rng *rand.Rand, inC, img int) *CountOnlyNet {
	return &CountOnlyNet{Net: &Sequential{Layers: []Layer{
		NewConv2D(rng, inC, 16, 3, 1, 1),
		NewLeakyReLU(0.1),
		&MaxPool{K: 2},
		NewConv2D(rng, 16, 32, 1, 1, 0),
		NewLeakyReLU(0.1),
		NewConv2D(rng, 32, 16, 3, 1, 1),
		NewLeakyReLU(0.1),
		&MaxPool{K: 2},
		&GlobalAvgPool{},
		NewLinear(rng, 16, 1),
	}}}
}

// Forward predicts the total object count for the frame.
func (n *CountOnlyNet) Forward(frame *tensor.Tensor) float64 {
	out := n.Net.Forward(frame)
	v := float64(out.Data[0])
	if v < 0 {
		v = 0
	}
	return v
}

// Train runs one SmoothL1 step on a single example and returns the loss.
func (n *CountOnlyNet) TrainStep(frame *tensor.Tensor, count float64, opt Optimizer) float64 {
	out := n.Net.Forward(frame)
	target := tensor.FromSlice([]float32{float32(count)}, 1)
	loss, grad := SmoothL1(out, target)
	n.Net.Backward(grad)
	opt.Step()
	return loss
}

// Params returns the trainable parameters.
func (n *CountOnlyNet) Params() []*Param { return n.Net.Params() }
