package nn

import (
	"math/rand/v2"
	"testing"

	"vmq/internal/tensor"
)

func benchNet(b *testing.B) (*CountLocNet, *tensor.Tensor) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	const img, d, classes = 32, 16, 2
	net := NewCountLocNet(rng, ICBackbone(rng, 3, img, d), d, img/4, classes)
	frame := tensor.New(3, img, img)
	frame.RandN(rng, 1)
	return net, frame
}

// BenchmarkCountLocNetForward measures one filter inference at the
// trained-backend resolution (the real-CNN analogue of the paper's
// 1.5 ms/frame figure).
func BenchmarkCountLocNetForward(b *testing.B) {
	net, frame := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(frame)
	}
}

// BenchmarkCountLocNetTrainStep measures one full forward/backward/step
// under the Eq. 2 multi-task loss.
func BenchmarkCountLocNetTrainStep(b *testing.B) {
	net, frame := benchNet(b)
	opt := NewAdam(net.Params(), 1e-3, 0)
	clabels := tensor.New(2)
	mlabels := tensor.New(2, 8, 8)
	loss := &MultiTaskLoss{Alpha: 1, Beta: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, maps := net.Forward(frame)
		_, gc, gm := loss.Eval(counts, clabels, maps, mlabels)
		net.Backward(gc, gm)
		opt.Step()
	}
}
