package nn

import (
	"math/rand/v2"
	"testing"

	"vmq/internal/tensor"
)

func benchNet(b *testing.B) (*CountLocNet, *tensor.Tensor) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	const img, d, classes = 32, 16, 2
	net := NewCountLocNet(rng, ICBackbone(rng, 3, img, d), d, img/4, classes)
	frame := tensor.New(3, img, img)
	frame.RandN(rng, 1)
	return net, frame
}

// BenchmarkCountLocNetForward measures one filter inference at the
// trained-backend resolution (the real-CNN analogue of the paper's
// 1.5 ms/frame figure).
func BenchmarkCountLocNetForward(b *testing.B) {
	net, frame := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(frame)
	}
}

// BenchmarkForwardBatch measures the batched inference hot path: 32
// frames per ForwardBatch through the arena-backed one-GEMM-per-layer
// kernels. Compare against BenchmarkForwardPerFrame (the same 32 frames
// through the per-frame training-path Forward): the batched pass is the
// production inference path and must be at least 2x the frames/s at a
// fraction of the allocations.
func BenchmarkForwardBatch(b *testing.B) {
	net, _ := benchNet(b)
	rng := rand.New(rand.NewPCG(2, 2))
	const batchN = 32
	batch := tensor.New(batchN, 3, 32, 32)
	batch.RandN(rng, 1)
	ar := &Arena{}
	ar.Reset()
	net.ForwardBatch(ar, batch) // warm the arena
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.Reset()
		net.ForwardBatch(ar, batch)
	}
	b.ReportMetric(float64(batchN)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkForwardPerFrame is the per-frame baseline over the identical
// 32-frame workload.
func BenchmarkForwardPerFrame(b *testing.B) {
	net, _ := benchNet(b)
	rng := rand.New(rand.NewPCG(2, 2))
	const batchN = 32
	batch := tensor.New(batchN, 3, 32, 32)
	batch.RandN(rng, 1)
	frames := make([]*tensor.Tensor, batchN)
	for f := range frames {
		frames[f] = tensor.FromSlice(batch.Data[f*3*32*32:(f+1)*3*32*32], 3, 32, 32)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frames {
			net.Forward(f)
		}
	}
	b.ReportMetric(float64(batchN)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkCountLocNetTrainStep measures one full forward/backward/step
// under the Eq. 2 multi-task loss.
func BenchmarkCountLocNetTrainStep(b *testing.B) {
	net, frame := benchNet(b)
	opt := NewAdam(net.Params(), 1e-3, 0)
	clabels := tensor.New(2)
	mlabels := tensor.New(2, 8, 8)
	loss := &MultiTaskLoss{Alpha: 1, Beta: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, maps := net.Forward(frame)
		_, gc, gm := loss.Eval(counts, clabels, maps, mlabels)
		net.Backward(gc, gm)
		opt.Step()
	}
}
