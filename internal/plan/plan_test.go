package plan

import (
	"testing"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/video"
	"vmq/internal/vql"
)

func bindQ(t *testing.T, src string, p video.Profile) *query.Plan {
	t.Helper()
	q, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return query.MustBind(q, p)
}

func TestChooseFindsSelectiveCombo(t *testing.T) {
	p := video.Jackson()
	pl := bindQ(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1 AND COUNT(person) = 1`, p)
	calib := video.NewStream(p, 1).Take(1500)
	backend := filters.NewODFilter(p, 1, nil)
	best, all := Choose(pl, backend, detect.NewOracle(nil), calib, 0.99)
	if len(all) != 9 {
		t.Fatalf("evaluated %d combos, want 9", len(all))
	}
	if best.Recall < 0.99 {
		t.Fatalf("chosen combo recall = %v", best.Recall)
	}
	// On sparse Jackson the exact count filter is both near-perfect and
	// most selective; the optimizer must not pick a looser count tolerance.
	if best.Tol.Count != 0 {
		t.Fatalf("chose %v; exact CCF dominates on jackson", best.Tol)
	}
	if best.Selectivity > 0.5 {
		t.Fatalf("chosen combo unselective: %v", best.Selectivity)
	}
}

func TestChooseRespectsRecallTarget(t *testing.T) {
	p := video.Detrac()
	pl := bindQ(t, `SELECT FRAMES FROM detrac WHERE COUNT(car) = 1 AND COUNT(bus) = 1`, p)
	calib := video.NewStream(p, 2).Take(1500)
	backend := filters.NewODFilter(p, 2, nil)
	strict, _ := Choose(pl, backend, detect.NewOracle(nil), calib, 0.999)
	loose, _ := Choose(pl, backend, detect.NewOracle(nil), calib, 0.80)
	if strict.Recall < loose.Recall {
		t.Fatalf("strict target picked lower recall (%v) than loose (%v)", strict.Recall, loose.Recall)
	}
	if loose.PerFrame > strict.PerFrame {
		t.Fatalf("loose target (%v) costs more than strict (%v)", loose.PerFrame, strict.PerFrame)
	}
}

func TestChooseCostModel(t *testing.T) {
	p := video.Jackson()
	pl := bindQ(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) >= 1`, p)
	calib := video.NewStream(p, 3).Take(500)
	backend := filters.NewODFilter(p, 3, nil)
	detector := detect.NewOracle(nil)
	_, all := Choose(pl, backend, detector, calib, 0.95)
	for _, c := range all {
		want := backend.Technique().Cost().PerCall +
			time.Duration(c.Selectivity*float64(detector.Cost().PerCall))
		if c.PerFrame != want {
			t.Fatalf("cost model mismatch for %v: %v vs %v", c.Tol, c.PerFrame, want)
		}
		if c.String() == "" {
			t.Fatal("empty Choice string")
		}
	}
}

func TestChooseFallbackWhenUnreachable(t *testing.T) {
	p := video.Jackson()
	pl := bindQ(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`, p)
	calib := video.NewStream(p, 4).Take(300)
	backend := filters.NewODFilter(p, 4, nil)
	// Target recall above anything achievable forces the fallback path; it
	// must return the max-recall combo rather than failing.
	best, all := Choose(pl, backend, detect.NewOracle(nil), calib, 1.1)
	maxRecall := 0.0
	for _, c := range all {
		if c.Recall > maxRecall {
			maxRecall = c.Recall
		}
	}
	if best.Recall != maxRecall {
		t.Fatalf("fallback recall %v, max available %v", best.Recall, maxRecall)
	}
}

func TestChoosePanicsOnEmptyCalibration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := video.Jackson()
	pl := bindQ(t, `SELECT FRAMES FROM jackson WHERE COUNT(car) = 1`, p)
	Choose(pl, filters.NewODFilter(p, 1, nil), detect.NewOracle(nil), nil, 0.9)
}
