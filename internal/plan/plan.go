// Package plan implements the filter-selection optimizer the paper
// defers to future work ("Placement of such filters into the query plan
// and related optimizations are an important research direction").
//
// Table III hand-picks, per query, "the most selective filter combinations
// that yield 100% accuracy". This package automates exactly that choice:
// it evaluates every tolerance combination (CCF exact/±1/±2 × CLF
// exact/M1/M2) on a calibration prefix of the stream, measures each
// combination's recall against annotated ground truth and its selectivity,
// and picks the cheapest combination whose recall clears a target. Cost
// follows the cascade model: filter cost on every frame plus detector cost
// on the frames the filter passes.
package plan

import (
	"fmt"
	"time"

	"vmq/internal/detect"
	"vmq/internal/filters"
	"vmq/internal/query"
	"vmq/internal/video"
)

// Choice is one evaluated tolerance combination.
type Choice struct {
	Tol query.Tolerances
	// Recall is the fraction of calibration true frames the filter keeps.
	Recall float64
	// RecallLCB is the Laplace-smoothed recall (kept+1)/(true+2) used for
	// decisions: a combination that kept all of a handful of positives is
	// not yet statistical evidence of target-level recall, which prevents
	// overfitting the choice to sparse calibration sets.
	RecallLCB float64
	// Selectivity is the fraction of calibration frames passed to the
	// detector.
	Selectivity float64
	// PerFrame is the expected virtual cost per stream frame under the
	// cascade model.
	PerFrame time.Duration
}

// String implements fmt.Stringer.
func (c Choice) String() string {
	return fmt.Sprintf("%s recall=%.3f sel=%.3f cost=%v/frame",
		c.Tol, c.Recall, c.Selectivity, c.PerFrame)
}

// Choose evaluates all nine tolerance combinations of the backend on the
// calibration frames and returns the cheapest one whose recall is at least
// targetRecall, plus the full evaluation table for inspection. When no
// combination reaches the target, the highest-recall combination is
// returned (ties broken by cost).
//
// Ground truth for the calibration frames comes from the annotating
// detector — in the paper's deployment that is Mask R-CNN over the
// (small) calibration prefix, the same annotator that produced the filter
// training labels.
func Choose(p *query.Plan, backend filters.Backend, annotator detect.Detector, calib []*video.Frame, targetRecall float64) (Choice, []Choice) {
	if len(calib) == 0 {
		panic("plan: empty calibration set")
	}
	// Annotate once.
	type annotated struct {
		frame *video.Frame
		truth bool
		out   *filters.Output
	}
	ann := make([]annotated, len(calib))
	trueFrames := 0
	for i, f := range calib {
		dets := annotator.Detect(f)
		truth := p.Where == nil || p.Where.EvalExact(dets, f.Bounds)
		if truth {
			trueFrames++
		}
		ann[i] = annotated{frame: f, truth: truth, out: backend.Evaluate(f)}
	}

	filterCost := backend.Technique().Cost().PerCall
	detectorCost := annotator.Cost().PerCall

	var all []Choice
	for ct := 0; ct <= 2; ct++ {
		for lt := 0; lt <= 2; lt++ {
			tol := query.Tolerances{Count: ct, Location: lt}
			kept, passed := 0, 0
			for _, a := range ann {
				pass := p.Where == nil || p.Where.EvalFilter(a.out, a.frame.Bounds, tol)
				if pass {
					passed++
					if a.truth {
						kept++
					}
				}
			}
			recall, lcb := 1.0, 1.0
			if trueFrames > 0 {
				recall = float64(kept) / float64(trueFrames)
				lcb = float64(kept+1) / float64(trueFrames+2)
			}
			sel := float64(passed) / float64(len(ann))
			all = append(all, Choice{
				Tol:         tol,
				Recall:      recall,
				RecallLCB:   lcb,
				Selectivity: sel,
				PerFrame:    filterCost + time.Duration(sel*float64(detectorCost)),
			})
		}
	}

	// Decision rule. With enough positives the per-combination recall
	// estimates are trustworthy and the cheapest combination meeting the
	// target wins. With too few positives any estimate (including "kept
	// all of them") is weak evidence, so the recall-safe loosest
	// combination is chosen — exactly how an operator would configure an
	// unfamiliar rare-event query.
	const minEvidence = 30
	if trueFrames < minEvidence {
		loosest := all[0]
		for _, c := range all[1:] {
			if c.Tol.Count >= loosest.Tol.Count && c.Tol.Location >= loosest.Tol.Location {
				loosest = c
			}
		}
		return loosest, all
	}
	best, ok := pickCheapest(all, targetRecall)
	if !ok {
		// No combination reaches the target: return the highest recall,
		// breaking ties toward the looser (safer) tolerances.
		best = all[0]
		for _, c := range all[1:] {
			if c.Recall > best.Recall ||
				(c.Recall == best.Recall && c.Tol.Count+c.Tol.Location > best.Tol.Count+best.Tol.Location) {
				best = c
			}
		}
	}
	return best, all
}

func pickCheapest(all []Choice, targetRecall float64) (Choice, bool) {
	var best Choice
	found := false
	for _, c := range all {
		if c.Recall < targetRecall {
			continue
		}
		if !found || c.PerFrame < best.PerFrame {
			best = c
			found = true
		}
	}
	return best, found
}
