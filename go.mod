module vmq

go 1.22
